//! Project-specific static analysis for the Azul workspace.
//!
//! The cycle-level model's numbers are only meaningful if the same
//! matrix + mapping + seed always yields the same cycle count, so this
//! crate enforces determinism hygiene the compiler cannot: a hand-rolled
//! lexer (dependency-free, consistent with the workspace's vendored-compat
//! ethos) scans every source file and reports rule violations with
//! file:line diagnostics.
//!
//! # Rules
//!
//! * [`NONDETERMINISTIC_ITERATION`] — iterating a `HashMap`/`HashSet`
//!   (`for`, `.iter()`, `.keys()`, `.values()`, `.drain()`, ...) in
//!   `crates/sim` (error), `crates/mapping` or `crates/hypergraph`
//!   (warning). Hash iteration order varies across runs and toolchains;
//!   use `BTreeMap`/`BTreeSet` or sort explicitly.
//! * [`WALL_CLOCK_IN_SIM`] — `Instant`/`SystemTime`/`thread_rng` in
//!   `crates/sim` (error). Cycle-level code must be a pure function of
//!   its inputs and seeds. One explicit carve-out: the host-profiling
//!   module `crates/sim/src/profile.rs` exists to measure *host* wall
//!   time and may use `Instant`/`SystemTime` (ambient randomness stays
//!   banned there too); every other sim file must route timing through
//!   its probes.
//! * [`UNCHECKED_FLOAT_REDUCTION`] — `.sum::<f64>()` / float `fold`
//!   reductions in `crates/sim`/`crates/solver` without a nearby
//!   `// reduction-order:` justification (warning). Float addition is
//!   not associative; the summation order must be pinned deliberately.
//! * [`PANIC_IN_SIM_HOT_PATH`] — `unwrap`/`expect`/`panic!` family
//!   macros inside functions whose name contains `tick`, `route` or
//!   `execute` in `crates/sim` (warning). Hot paths should return typed
//!   `SimError`s.
//! * [`SHARED_MUTABLE_IN_SHARD`] — indexing the machine-wide `routers`
//!   / `pes` arrays inside a function whose name contains `tick` in
//!   `crates/sim` (warning). Shard tick functions run concurrently;
//!   cross-tile effects must go through shard-local views and the
//!   double-buffered outbox applied at the cycle barrier, never by
//!   reaching into the global per-tile arrays.
//! * [`UNWRAP_IN_PIPELINE`] — `.unwrap()` / `.expect(..)` inside
//!   functions whose name contains `prepare`, `solve`, `factor`,
//!   `request`, `schedule`, `admit` or `submit` in `crates/core`,
//!   `crates/solver` or `crates/serve` (warning). The supervised
//!   degradation ladders — and, one layer up, the service's typed
//!   shedding/retry paths — can only catch failures that surface as
//!   typed `AzulError`/`SolverError`/`ServeError` values; a panic in
//!   the pipeline or the request path skips every recovery rung and
//!   kills a worker thread. `#[cfg(test)]` modules are exempt.
//!
//! Any finding can be waived in place with
//! `// azul-lint: allow(<rule>)` on the offending line or up to three
//! lines above (so a directive can precede a multi-line statement);
//! allows should carry a justification in the same comment.
//!
//! The analysis is per-file and purely lexical: it skips strings,
//! chars and comments, but does not resolve types across files. That
//! trades a few theoretically-missable cases for zero dependencies and
//! trivially auditable behavior.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Rule: `HashMap`/`HashSet` iteration in order-sensitive crates.
pub const NONDETERMINISTIC_ITERATION: &str = "nondeterministic-iteration";
/// Rule: wall-clock or ambient randomness in cycle-level code.
pub const WALL_CLOCK_IN_SIM: &str = "wall-clock-in-sim";
/// Rule: unjustified float reductions in sim/solver code.
pub const UNCHECKED_FLOAT_REDUCTION: &str = "unchecked-float-reduction";
/// Rule: panicking calls inside tick/route/execute hot paths.
pub const PANIC_IN_SIM_HOT_PATH: &str = "panic-in-sim-hot-path";
/// Rule: global per-tile arrays indexed inside shard tick functions.
pub const SHARED_MUTABLE_IN_SHARD: &str = "shared-mutable-in-shard";
/// Rule: panicking `.unwrap()`/`.expect()` in pipeline and service
/// request-path code.
pub const UNWRAP_IN_PIPELINE: &str = "unwrap-in-pipeline";

/// Every rule this linter knows, in reporting order.
pub const ALL_RULES: [&str; 6] = [
    NONDETERMINISTIC_ITERATION,
    WALL_CLOCK_IN_SIM,
    UNCHECKED_FLOAT_REDUCTION,
    PANIC_IN_SIM_HOT_PATH,
    SHARED_MUTABLE_IN_SHARD,
    UNWRAP_IN_PIPELINE,
];

/// Diagnostic severity. `--deny warnings` promotes warnings to failures
/// at the CLI layer; the levels themselves are fixed per rule and scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Questionable; fails only under `--deny warnings`.
    Warning,
    /// Always fails the check.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding, anchored to a line of one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// 1-based source line.
    pub line: u32,
    /// The violated rule (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// How hard the finding fails.
    pub severity: Severity,
    /// What was found and what to do about it.
    pub message: String,
}

/// The crate-ish scope a path belongs to: `"sim"` for
/// `crates/sim/...`, `"azul"` for the root package's `src/`, the first
/// path segment otherwise (`"tests"`, `"benches"`).
pub fn scope_of(path: &str) -> &str {
    let norm = path.trim_start_matches("./");
    if let Some(rest) = norm.split("crates/").nth(1) {
        return rest.split('/').next().unwrap_or("");
    }
    if norm.starts_with("src/") || norm.contains("/src/") {
        return "azul";
    }
    norm.split('/').next().unwrap_or("")
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Punct(char),
    Num { float: bool },
}

#[derive(Debug, Clone)]
struct Token {
    line: u32,
    tok: Tok,
}

/// A scanned file: token stream plus the directives mined from comments.
struct Scan {
    tokens: Vec<Token>,
    /// Lines carrying `azul-lint: allow(...)`, with the allowed rules.
    /// A directive covers its own line and the next three (multi-line
    /// statements put the flagged token a few lines below the comment).
    allows: BTreeMap<u32, Vec<String>>,
    /// Lines carrying a `reduction-order:` justification.
    justified: BTreeSet<u32>,
}

impl Scan {
    fn allowed(&self, rule: &str, line: u32) -> bool {
        (line.saturating_sub(3)..=line).any(|l| {
            self.allows
                .get(&l)
                .is_some_and(|rules| rules.iter().any(|r| r == rule))
        })
    }

    /// A `reduction-order:` comment on `line` or up to three lines above.
    fn reduction_justified(&self, line: u32) -> bool {
        (line.saturating_sub(3)..=line).any(|l| self.justified.contains(&l))
    }
}

fn scan(src: &str) -> Scan {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut tokens = Vec::new();
    let mut allows: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    let mut justified = BTreeSet::new();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && i + 1 < n && b[i + 1] == '/' {
            // Line comment (includes doc comments): mine directives.
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            parse_directives(&text, line, &mut allows, &mut justified);
        } else if c == '/' && i + 1 < n && b[i + 1] == '*' {
            // Block comment; Rust block comments nest.
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        } else if (c == 'r' || c == 'b') && is_raw_or_quoted(&b, i) {
            // r"...", r#"..."#, b"...", br#"..."# — skip the literal.
            i = skip_raw_string(&b, i, &mut line);
        } else if c == '"' {
            i = skip_string(&b, i, &mut line);
        } else if c == '\'' {
            // Lifetime ('a) or char literal ('x', '\n').
            if i + 2 < n && is_ident_start(b[i + 1]) && b[i + 2] != '\'' {
                i += 2;
                while i < n && is_ident(b[i]) {
                    i += 1;
                }
            } else {
                i += 1;
                if i < n && b[i] == '\\' {
                    i += 2;
                }
                while i < n && b[i] != '\'' {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i += 1;
            }
        } else if is_ident_start(c) {
            let start = i;
            while i < n && is_ident(b[i]) {
                i += 1;
            }
            tokens.push(Token {
                line,
                tok: Tok::Ident(b[start..i].iter().collect()),
            });
        } else if c.is_ascii_digit() {
            let mut float = false;
            while i < n {
                if b[i].is_alphanumeric() || b[i] == '_' {
                    i += 1;
                } else if b[i] == '.' && !float && i + 1 < n && b[i + 1].is_ascii_digit() {
                    // `1.5` continues the literal; `0..n` is a range.
                    float = true;
                    i += 1;
                } else {
                    break;
                }
            }
            tokens.push(Token {
                line,
                tok: Tok::Num { float },
            });
        } else {
            tokens.push(Token {
                line,
                tok: Tok::Punct(c),
            });
            i += 1;
        }
    }
    Scan {
        tokens,
        allows,
        justified,
    }
}

/// Whether the `r`/`b` at `i` starts a (raw) string rather than an ident.
fn is_raw_or_quoted(b: &[char], i: usize) -> bool {
    let mut j = i + 1;
    if j < b.len() && (b[j] == 'r' || b[j] == 'b') && b[i] != b[j] {
        j += 1; // br / rb prefixes
    }
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    j < b.len() && b[j] == '"' && (j > i + 1 || b[i + 1] == '"')
}

fn skip_raw_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    // Consume prefix letters then hashes.
    while i < b.len() && (b[i] == 'r' || b[i] == 'b') {
        i += 1;
    }
    let mut hashes = 0usize;
    while i < b.len() && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    debug_assert!(i < b.len() && b[i] == '"');
    i += 1;
    while i < b.len() {
        if b[i] == '\n' {
            *line += 1;
            i += 1;
        } else if b[i] == '"' {
            // need `hashes` following '#'s to close
            let mut k = 0;
            while k < hashes && i + 1 + k < b.len() && b[i + 1 + k] == '#' {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
            i += 1;
        } else if hashes == 0 && b[i] == '\\' {
            i += 2; // non-raw byte strings honor escapes
        } else {
            i += 1;
        }
    }
    i
}

fn skip_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

fn parse_directives(
    comment: &str,
    line: u32,
    allows: &mut BTreeMap<u32, Vec<String>>,
    justified: &mut BTreeSet<u32>,
) {
    if comment.contains("reduction-order:") {
        justified.insert(line);
    }
    let Some(pos) = comment.find("azul-lint:") else {
        return;
    };
    let rest = &comment[pos + "azul-lint:".len()..];
    let Some(open) = rest.find("allow(") else {
        return;
    };
    let args = &rest[open + "allow(".len()..];
    let Some(close) = args.find(')') else {
        return;
    };
    let rules = args[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty());
    allows.entry(line).or_default().extend(rules);
}

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

const KEYWORDS: [&str; 12] = [
    "let", "mut", "pub", "fn", "if", "else", "match", "return", "for", "in", "impl", "use",
];

/// Iteration methods whose order follows the container's.
const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Lints one file. `path` determines the scope (which rules apply and
/// at which severity); `src` is the file contents.
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let scope = scope_of(path);
    let scan = scan(src);
    let mut diags = Vec::new();

    match scope {
        "sim" => rule_nondet_iteration(&scan, Severity::Error, &mut diags),
        "mapping" | "hypergraph" => rule_nondet_iteration(&scan, Severity::Warning, &mut diags),
        _ => {}
    }
    if scope == "sim" {
        // The host-profiling module is the one sanctioned wall-clock
        // user in the sim crate: it measures the simulator, never the
        // simulation. Ambient randomness has no such carve-out.
        let profile_module = path
            .trim_start_matches("./")
            .ends_with("crates/sim/src/profile.rs");
        rule_wall_clock(&scan, profile_module, &mut diags);
        rule_panic_hot_path(&scan, &mut diags);
        rule_shared_mutable_in_shard(&scan, &mut diags);
    }
    if scope == "sim" || scope == "solver" {
        rule_float_reduction(&scan, &mut diags);
    }
    if scope == "core" || scope == "solver" || scope == "serve" {
        rule_unwrap_in_pipeline(&scan, &mut diags);
    }

    diags.retain(|d| !scan.allowed(d.rule, d.line));
    diags.sort_by_key(|d| (d.line, d.rule));
    diags
}

fn ident(t: &Token) -> Option<&str> {
    match &t.tok {
        Tok::Ident(s) => Some(s),
        _ => None,
    }
}

fn punct(t: &Token, c: char) -> bool {
    t.tok == Tok::Punct(c)
}

/// Pass 1: names bound to `HashMap`/`HashSet` values in this file
/// (declarations `name: HashMap<..>` and initializers
/// `let name = HashMap::new()`); pass 2: flag iteration over them.
fn rule_nondet_iteration(scan: &Scan, severity: Severity, diags: &mut Vec<Diagnostic>) {
    let toks = &scan.tokens;
    let mut hash_names: BTreeSet<String> = BTreeSet::new();
    let mut current_let: Option<String> = None;
    for i in 0..toks.len() {
        match ident(&toks[i]) {
            Some("let") => {
                let mut j = i + 1;
                if ident(&toks[j.min(toks.len() - 1)]) == Some("mut") {
                    j += 1;
                }
                if let Some(Some(name)) = toks.get(j).map(ident) {
                    if !KEYWORDS.contains(&name) {
                        current_let = Some(name.to_string());
                    }
                }
            }
            Some("HashMap") | Some("HashSet") => {
                // Walk back over the type path / annotation syntax to the
                // bound name: `name : [&] [std :: collections ::] HashMap`.
                let mut j = i;
                while j > 0 {
                    j -= 1;
                    match &toks[j].tok {
                        Tok::Punct(':') | Tok::Punct('&') => continue,
                        Tok::Ident(w) if w == "std" || w == "collections" || w == "mut" => continue,
                        Tok::Ident(w) if !KEYWORDS.contains(&w.as_str()) => {
                            hash_names.insert(w.clone());
                            break;
                        }
                        _ => {
                            // `= HashMap::new()` or a generic position:
                            // attribute to the current let binding.
                            if let Some(name) = &current_let {
                                hash_names.insert(name.clone());
                            }
                            break;
                        }
                    }
                }
            }
            _ => {}
        }
        if punct(&toks[i], ';') {
            current_let = None;
        }
    }
    if hash_names.is_empty() {
        return;
    }

    // Method calls: `name.iter()`, `self.name.keys()`, ...
    for i in 2..toks.len() {
        let Some(m) = ident(&toks[i]) else { continue };
        if !ITER_METHODS.contains(&m) || !punct(&toks[i - 1], '.') {
            continue;
        }
        if toks.get(i + 1).is_none_or(|t| !punct(t, '(')) {
            continue;
        }
        if let Some(recv) = ident(&toks[i - 2]) {
            if hash_names.contains(recv) {
                diags.push(Diagnostic {
                    line: toks[i].line,
                    rule: NONDETERMINISTIC_ITERATION,
                    severity,
                    message: format!(
                        "`{recv}.{m}()` iterates a HashMap/HashSet in unspecified order; \
                         use BTreeMap/BTreeSet or collect-and-sort"
                    ),
                });
            }
        }
    }

    // `for pat in [&[mut]] path.to.name {` — only simple paths; method
    // calls in the iterable are covered by the pass above.
    for i in 0..toks.len() {
        if ident(&toks[i]) != Some("for") {
            continue;
        }
        // Find `in` before the body brace.
        let mut j = i + 1;
        let mut in_at = None;
        while j < toks.len() && !punct(&toks[j], '{') && !punct(&toks[j], ';') {
            if ident(&toks[j]) == Some("in") {
                in_at = Some(j);
                break;
            }
            j += 1;
        }
        let Some(start) = in_at else { continue };
        let mut k = start + 1;
        let mut last_name: Option<&str> = None;
        let mut simple = true;
        while k < toks.len() && !punct(&toks[k], '{') {
            match &toks[k].tok {
                Tok::Ident(w) => last_name = Some(w),
                Tok::Punct('&') | Tok::Punct('.') => {}
                Tok::Punct(_) | Tok::Num { .. } => {
                    simple = false;
                    break;
                }
            }
            k += 1;
        }
        if !simple {
            continue;
        }
        if let Some(name) = last_name {
            if hash_names.contains(name) {
                diags.push(Diagnostic {
                    line: toks[i].line,
                    rule: NONDETERMINISTIC_ITERATION,
                    severity,
                    message: format!(
                        "`for .. in {name}` iterates a HashMap/HashSet in unspecified \
                         order; use BTreeMap/BTreeSet or collect-and-sort"
                    ),
                });
            }
        }
    }
}

fn rule_wall_clock(scan: &Scan, allow_wall_clock: bool, diags: &mut Vec<Diagnostic>) {
    for t in &scan.tokens {
        let Some(w) = ident(t) else { continue };
        let is_clock = w == "Instant" || w == "SystemTime";
        if (is_clock && !allow_wall_clock) || w == "thread_rng" {
            diags.push(Diagnostic {
                line: t.line,
                rule: WALL_CLOCK_IN_SIM,
                severity: Severity::Error,
                message: format!(
                    "`{w}` in cycle-level code: simulation must be a pure function of \
                     its inputs and seeds (use cycle counters / seeded SmallRng)"
                ),
            });
        }
    }
}

fn rule_float_reduction(scan: &Scan, diags: &mut Vec<Diagnostic>) {
    let toks = &scan.tokens;
    for i in 1..toks.len() {
        if !punct(&toks[i - 1], '.') {
            continue;
        }
        let line = toks[i].line;
        let flag = |diags: &mut Vec<Diagnostic>, what: &str| {
            diags.push(Diagnostic {
                line,
                rule: UNCHECKED_FLOAT_REDUCTION,
                severity: Severity::Warning,
                message: format!(
                    "{what} reduces floats whose result depends on summation order; \
                     pin the order and justify with a `// reduction-order:` comment"
                ),
            });
        };
        match ident(&toks[i]) {
            Some("sum") => {
                // `.sum::<f64>()` turbofish.
                let is_f64 = punct(&toks[i + 1], ':')
                    && punct(&toks[i + 2], ':')
                    && punct(&toks[i + 3], '<')
                    && ident(&toks[i + 4]) == Some("f64");
                if is_f64 && !scan.reduction_justified(line) {
                    flag(diags, "`.sum::<f64>()`");
                }
            }
            Some("fold") => {
                if !punct(&toks[i + 1], '(') {
                    continue;
                }
                // Float accumulator: a float literal or f64 in the first
                // few argument tokens.
                let floaty = toks[i + 2..]
                    .iter()
                    .take(6)
                    .any(|t| matches!(t.tok, Tok::Num { float: true }) || ident(t) == Some("f64"));
                if floaty && !scan.reduction_justified(line) {
                    flag(diags, "float `fold`");
                }
            }
            _ => {}
        }
    }
}

fn rule_panic_hot_path(scan: &Scan, diags: &mut Vec<Diagnostic>) {
    let toks = &scan.tokens;
    let mut depth = 0i32;
    let mut fn_stack: Vec<(String, i32)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let hot = |stack: &[(String, i32)]| {
        stack.last().is_some_and(|(name, _)| {
            name.contains("tick") || name.contains("route") || name.contains("execute")
        })
    };
    for i in 0..toks.len() {
        match &toks[i].tok {
            Tok::Ident(w) if w == "fn" => {
                if let Some(Some(name)) = toks.get(i + 1).map(ident) {
                    pending_fn = Some(name.to_string());
                }
            }
            Tok::Punct(';') => pending_fn = None, // bodyless trait method
            Tok::Punct('{') => {
                depth += 1;
                if let Some(name) = pending_fn.take() {
                    fn_stack.push((name, depth));
                }
            }
            Tok::Punct('}') => {
                if fn_stack.last().is_some_and(|&(_, d)| d == depth) {
                    fn_stack.pop();
                }
                depth -= 1;
            }
            Tok::Ident(w)
                if (w == "panic" || w == "unreachable" || w == "todo" || w == "unimplemented")
                    && toks.get(i + 1).is_some_and(|t| punct(t, '!'))
                    && hot(&fn_stack) =>
            {
                diags.push(Diagnostic {
                    line: toks[i].line,
                    rule: PANIC_IN_SIM_HOT_PATH,
                    severity: Severity::Warning,
                    message: format!(
                        "`{w}!` inside `{}`: hot paths should return a typed SimError",
                        fn_stack.last().map(|(n, _)| n.as_str()).unwrap_or("?")
                    ),
                });
            }
            Tok::Ident(w)
                if (w == "unwrap" || w == "expect")
                    && punct(&toks[i - 1], '.')
                    && toks.get(i + 1).is_some_and(|t| punct(t, '('))
                    && hot(&fn_stack) =>
            {
                diags.push(Diagnostic {
                    line: toks[i].line,
                    rule: PANIC_IN_SIM_HOT_PATH,
                    severity: Severity::Warning,
                    message: format!(
                        "`.{w}()` inside `{}`: hot paths should return a typed SimError",
                        fn_stack.last().map(|(n, _)| n.as_str()).unwrap_or("?")
                    ),
                });
            }
            _ => {}
        }
    }
}

/// `.unwrap()`/`.expect()` inside prepare/solve/factor functions in the
/// pipeline crates, and inside request/schedule/admit/submit functions
/// in the serve crate. A panic there aborts the whole supervised solve
/// (or kills a service worker mid-request) instead of letting the
/// degradation ladders or the typed shedding/retry paths catch the
/// failure, so fallible steps must surface typed errors. `#[cfg(test)]`
/// modules are exempt: tests unwrap by design.
fn rule_unwrap_in_pipeline(scan: &Scan, diags: &mut Vec<Diagnostic>) {
    let toks = &scan.tokens;
    let mut depth = 0i32;
    let mut fn_stack: Vec<(String, i32)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let mut pending_test_mod = false;
    let mut test_mod_depth: Option<i32> = None;
    let in_pipeline = |stack: &[(String, i32)]| {
        stack.last().is_some_and(|(name, _)| {
            name.contains("prepare")
                || name.contains("solve")
                || name.contains("factor")
                || name.contains("request")
                || name.contains("schedule")
                || name.contains("admit")
                || name.contains("submit")
        })
    };
    for i in 0..toks.len() {
        // `#[cfg(test)]` directly before a `mod` opens a test-only
        // module: everything inside is exempt.
        if punct(&toks[i], '#')
            && toks.get(i + 1).is_some_and(|t| punct(t, '['))
            && toks.get(i + 2).and_then(ident) == Some("cfg")
            && toks.get(i + 3).is_some_and(|t| punct(t, '('))
            && toks.get(i + 4).and_then(ident) == Some("test")
        {
            pending_test_mod = true;
        }
        match &toks[i].tok {
            Tok::Ident(w) if w == "fn" => {
                if let Some(Some(name)) = toks.get(i + 1).map(ident) {
                    pending_fn = Some(name.to_string());
                }
                pending_test_mod = false;
            }
            Tok::Punct(';') => pending_fn = None, // bodyless trait method
            Tok::Punct('{') => {
                depth += 1;
                if let Some(name) = pending_fn.take() {
                    fn_stack.push((name, depth));
                }
                if pending_test_mod
                    && i >= 2
                    && ident(&toks[i - 2]) == Some("mod")
                    && test_mod_depth.is_none()
                {
                    test_mod_depth = Some(depth);
                }
                pending_test_mod = false;
            }
            Tok::Punct('}') => {
                if fn_stack.last().is_some_and(|&(_, d)| d == depth) {
                    fn_stack.pop();
                }
                if test_mod_depth == Some(depth) {
                    test_mod_depth = None;
                }
                depth -= 1;
            }
            Tok::Ident(w)
                if (w == "unwrap" || w == "expect")
                    && i > 0
                    && punct(&toks[i - 1], '.')
                    && toks.get(i + 1).is_some_and(|t| punct(t, '('))
                    && test_mod_depth.is_none()
                    && in_pipeline(&fn_stack) =>
            {
                diags.push(Diagnostic {
                    line: toks[i].line,
                    rule: UNWRAP_IN_PIPELINE,
                    severity: Severity::Warning,
                    message: format!(
                        "`.{w}()` inside `{}`: pipeline steps must return typed errors \
                         so the degradation ladders can catch the failure",
                        fn_stack.last().map(|(n, _)| n.as_str()).unwrap_or("?")
                    ),
                });
            }
            _ => {}
        }
    }
}

/// The machine-wide per-tile arrays a shard tick must never index
/// directly: every access inside a concurrently-running tick function
/// has to go through the shard-local slices (conventionally renamed
/// `local_*`) or the deferred outbox.
const SHARD_GLOBAL_ARRAYS: [&str; 2] = ["routers", "pes"];

fn rule_shared_mutable_in_shard(scan: &Scan, diags: &mut Vec<Diagnostic>) {
    let toks = &scan.tokens;
    let mut depth = 0i32;
    let mut fn_stack: Vec<(String, i32)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let in_tick =
        |stack: &[(String, i32)]| stack.last().is_some_and(|(name, _)| name.contains("tick"));
    for i in 0..toks.len() {
        match &toks[i].tok {
            Tok::Ident(w) if w == "fn" => {
                if let Some(Some(name)) = toks.get(i + 1).map(ident) {
                    pending_fn = Some(name.to_string());
                }
            }
            Tok::Punct(';') => pending_fn = None, // bodyless trait method
            Tok::Punct('{') => {
                depth += 1;
                if let Some(name) = pending_fn.take() {
                    fn_stack.push((name, depth));
                }
            }
            Tok::Punct('}') => {
                if fn_stack.last().is_some_and(|&(_, d)| d == depth) {
                    fn_stack.pop();
                }
                depth -= 1;
            }
            Tok::Ident(w)
                if SHARD_GLOBAL_ARRAYS.contains(&w.as_str())
                    && toks.get(i + 1).is_some_and(|t| punct(t, '['))
                    && in_tick(&fn_stack) =>
            {
                diags.push(Diagnostic {
                    line: toks[i].line,
                    rule: SHARED_MUTABLE_IN_SHARD,
                    severity: Severity::Warning,
                    message: format!(
                        "`{w}[..]` indexed inside `{}`: shard tick functions run \
                         concurrently; use the shard-local views and the \
                         barrier-applied outbox, not the machine-wide arrays",
                        fn_stack.last().map(|(n, _)| n.as_str()).unwrap_or("?")
                    ),
                });
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIM_PATH: &str = "crates/sim/src/fake.rs";

    fn rules_at(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn scope_resolution() {
        assert_eq!(scope_of("crates/sim/src/machine.rs"), "sim");
        assert_eq!(scope_of("./crates/mapping/src/grid.rs"), "mapping");
        assert_eq!(scope_of("src/bin/azul.rs"), "azul");
        assert_eq!(scope_of("tests/determinism.rs"), "tests");
    }

    #[test]
    fn hashmap_for_loop_is_flagged_in_sim() {
        let src = r#"
use std::collections::HashMap;
fn f() {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    for (k, v) in &m {
        let _ = (k, v);
    }
}
"#;
        let diags = lint_source(SIM_PATH, src);
        assert_eq!(rules_at(&diags), vec![NONDETERMINISTIC_ITERATION]);
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].line, 6);
    }

    #[test]
    fn hashmap_iter_methods_are_flagged() {
        let src = r#"
fn f(saac: &std::collections::HashMap<u32, u32>) {
    let _ = saac.keys().count();
    let _ = saac.values().count();
    let _ = saac.iter().count();
}
"#;
        let diags = lint_source(SIM_PATH, src);
        assert_eq!(diags.len(), 3);
        assert!(diags.iter().all(|d| d.rule == NONDETERMINISTIC_ITERATION));
    }

    #[test]
    fn btreemap_iteration_is_clean() {
        let src = r#"
use std::collections::BTreeMap;
fn f() {
    let mut m: BTreeMap<u32, u32> = BTreeMap::new();
    m.insert(1, 2);
    for (k, v) in &m {
        let _ = (k, v);
    }
    let _ = m.keys().count();
}
"#;
        assert!(lint_source(SIM_PATH, src).is_empty());
    }

    #[test]
    fn non_iterating_hash_use_is_clean() {
        // Membership tests and length checks don't depend on order.
        let src = r#"
use std::collections::HashSet;
fn f() {
    let mut s: HashSet<u32> = HashSet::new();
    s.insert(3);
    assert!(s.contains(&3));
    assert_eq!(s.len(), 1);
}
"#;
        assert!(lint_source(SIM_PATH, src).is_empty());
    }

    #[test]
    fn allow_comment_waives_on_own_and_next_line() {
        let src = r#"
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) {
    // azul-lint: allow(nondeterministic-iteration) summed, order-free
    for (_k, v) in m.iter() {
        let _ = v;
    }
}
"#;
        assert!(lint_source(SIM_PATH, src).is_empty());
    }

    #[test]
    fn mapping_scope_downgrades_to_warning() {
        let src = "fn f(m: &std::collections::HashMap<u32,u32>) { let _ = m.keys(); }";
        let diags = lint_source("crates/mapping/src/fake.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warning);
        // Out-of-scope crates are exempt entirely.
        assert!(lint_source("crates/solver/src/fake.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_flagged_only_in_sim() {
        let src = "fn f() { let t = std::time::Instant::now(); let _ = t; }";
        let diags = lint_source(SIM_PATH, src);
        assert_eq!(rules_at(&diags), vec![WALL_CLOCK_IN_SIM]);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(lint_source("crates/telemetry/src/span.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_allows_only_the_profile_module() {
        // The host-profiling module measures the simulator's own wall
        // time; `Instant`/`SystemTime` are legal there and only there.
        let clock = "fn f() { let t = std::time::Instant::now(); let _ = t; }";
        assert!(lint_source("crates/sim/src/profile.rs", clock).is_empty());
        assert!(lint_source("./crates/sim/src/profile.rs", clock).is_empty());
        // A sim file merely *named* like it elsewhere is still flagged.
        let diags = lint_source("crates/sim/src/profile_helpers.rs", clock);
        assert_eq!(rules_at(&diags), vec![WALL_CLOCK_IN_SIM]);
        // Ambient randomness has no carve-out, even in the profile
        // module.
        let rng = "fn f() { let r = rand::thread_rng(); let _ = r; }";
        let diags = lint_source("crates/sim/src/profile.rs", rng);
        assert_eq!(rules_at(&diags), vec![WALL_CLOCK_IN_SIM]);
    }

    #[test]
    fn float_sum_needs_justification() {
        let bad = "fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }";
        let diags = lint_source("crates/solver/src/fake.rs", bad);
        assert_eq!(rules_at(&diags), vec![UNCHECKED_FLOAT_REDUCTION]);

        let good = r#"
// reduction-order: slice order, fixed by construction
fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }
"#;
        assert!(lint_source("crates/solver/src/fake.rs", good).is_empty());
        // Integer sums are order-free.
        let int = "fn f(v: &[u64]) -> u64 { v.iter().sum::<u64>() }";
        assert!(lint_source("crates/solver/src/fake.rs", int).is_empty());
    }

    #[test]
    fn float_fold_needs_justification() {
        let bad = "fn f(v: &[f64]) -> f64 { v.iter().fold(0.0, |a, b| a + b) }";
        let diags = lint_source(SIM_PATH, bad);
        assert_eq!(rules_at(&diags), vec![UNCHECKED_FLOAT_REDUCTION]);
        let int = "fn f(v: &[u64]) -> u64 { v.iter().fold(0, |a, b| a + b) }";
        assert!(lint_source(SIM_PATH, int).is_empty());
    }

    #[test]
    fn panics_in_hot_paths_flagged() {
        let src = r#"
fn tick_router_at(x: Option<u32>) -> u32 {
    x.expect("has a value")
}
fn compile(x: Option<u32>) -> u32 {
    x.unwrap() // fine: not a hot path
}
"#;
        let diags = lint_source(SIM_PATH, src);
        assert_eq!(rules_at(&diags), vec![PANIC_IN_SIM_HOT_PATH]);
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn panic_macro_in_hot_path_flagged_and_allowable() {
        let bad = "fn execute(c: u32) { if c > 3 { panic!(\"boom\"); } }";
        assert_eq!(
            rules_at(&lint_source(SIM_PATH, bad)),
            vec![PANIC_IN_SIM_HOT_PATH]
        );
        let allowed = r#"
fn execute(c: u32) {
    // azul-lint: allow(panic-in-sim-hot-path) unreachable by construction
    if c > 3 { panic!("boom"); }
}
"#;
        assert!(lint_source(SIM_PATH, allowed).is_empty());
    }

    #[test]
    fn global_array_index_in_tick_fn_flagged() {
        let src = r#"
fn tick_shard(routers: &mut [u32], pes: &mut [u32], t: usize) {
    routers[t] += 1;
    let _ = pes[t];
}
fn commit(routers: &mut [u32], t: usize) {
    routers[t] += 1; // fine: not a tick function
}
"#;
        let diags = lint_source(SIM_PATH, src);
        assert_eq!(
            rules_at(&diags),
            vec![SHARED_MUTABLE_IN_SHARD, SHARED_MUTABLE_IN_SHARD]
        );
        assert_eq!(diags[0].line, 3);
        assert_eq!(diags[1].line, 4);
        assert!(diags.iter().all(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn shard_local_views_in_tick_fn_clean() {
        let src = r#"
fn tick_shard(local_routers: &mut [u32], local_pes: &mut [u32], t: usize) {
    local_routers[t] += 1;
    let _ = local_pes[t];
}
"#;
        assert!(lint_source(SIM_PATH, src).is_empty());
        // And outside the sim scope the rule does not apply at all.
        let global = "fn tick(routers: &mut [u32]) { routers[0] += 1; }";
        assert!(lint_source("crates/models/src/fake.rs", global).is_empty());
    }

    #[test]
    fn shared_mutable_waivable_with_allow() {
        let src = r#"
fn tick_routers(routers: &mut [u32], t: usize) {
    // azul-lint: allow(shared-mutable-in-shard) serial helper owns the array
    routers[t] += 1;
}
"#;
        assert!(lint_source(SIM_PATH, src).is_empty());
    }

    #[test]
    fn unwrap_in_pipeline_functions_flagged() {
        let src = r#"
fn prepare_solver(x: Option<u32>) -> u32 {
    x.unwrap()
}
fn try_solve(x: Option<u32>) -> u32 {
    x.expect("present")
}
fn ic0_factor(x: Option<u32>) -> u32 {
    x.unwrap()
}
fn compile(x: Option<u32>) -> u32 {
    x.unwrap() // fine: not a pipeline function
}
"#;
        let diags = lint_source("crates/core/src/lib.rs", src);
        assert_eq!(
            rules_at(&diags),
            vec![UNWRAP_IN_PIPELINE, UNWRAP_IN_PIPELINE, UNWRAP_IN_PIPELINE]
        );
        assert_eq!(diags[0].line, 3);
        assert!(diags.iter().all(|d| d.severity == Severity::Warning));
        // The rule covers core, solver and serve, nothing else.
        assert!(!lint_source("crates/solver/src/fake.rs", src).is_empty());
        assert!(!lint_source("crates/serve/src/fake.rs", src).is_empty());
        assert!(lint_source(SIM_PATH, src).is_empty());
    }

    #[test]
    fn unwrap_in_serve_request_paths_flagged() {
        // The service's request/scheduler vocabulary is covered: a
        // panic in any of these kills a worker thread and strands the
        // request's outcome slot.
        let src = r#"
fn run_request(x: Option<u32>) -> u32 {
    x.unwrap()
}
fn schedule_next(x: Option<u32>) -> u32 {
    x.expect("job queued")
}
fn admit(x: Option<u32>) -> u32 {
    x.unwrap()
}
fn submit_batch(x: Option<u32>) -> u32 {
    x.unwrap()
}
fn worker_loop(x: Option<u32>) -> u32 {
    x.unwrap() // fine: not a request-path name
}
"#;
        let diags = lint_source("crates/serve/src/service.rs", src);
        assert_eq!(
            rules_at(&diags),
            vec![
                UNWRAP_IN_PIPELINE,
                UNWRAP_IN_PIPELINE,
                UNWRAP_IN_PIPELINE,
                UNWRAP_IN_PIPELINE
            ]
        );
        // The request-path vocabulary applies inside core too (the
        // scope predicate and the name predicate are orthogonal).
        assert!(!lint_source("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_test_module_is_exempt() {
        let src = r#"
fn solve(x: Option<u32>) -> Option<u32> {
    x
}
#[cfg(test)]
mod tests {
    #[test]
    fn solve_works() {
        super::solve(Some(1)).unwrap();
    }
}
"#;
        assert!(lint_source("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_pipeline_waivable_with_allow() {
        let src = r#"
fn factor_all(x: Option<u32>) -> u32 {
    // azul-lint: allow(unwrap-in-pipeline) guarded by the check above
    x.unwrap()
}
"#;
        assert!(lint_source("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let src = r##"
fn f() -> &'static str {
    // for (k, v) in map.iter() { Instant::now() }
    /* HashMap::new().keys() */
    let s = "for x in hash_map.iter() { Instant }";
    let r = r#"thread_rng() HashMap"#;
    let _ = (s, r);
    "Instant::now"
}
"##;
        assert!(lint_source(SIM_PATH, src).is_empty());
    }

    #[test]
    fn field_declarations_track_hash_types() {
        let src = r#"
use std::collections::HashMap;
pub struct P {
    pub saac: HashMap<u32, (u32, u32)>,
}
impl P {
    fn g(&self) -> usize {
        self.saac.iter().count()
    }
}
"#;
        let diags = lint_source(SIM_PATH, src);
        assert_eq!(rules_at(&diags), vec![NONDETERMINISTIC_ITERATION]);
    }
}
