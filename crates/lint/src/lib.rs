//! Project-specific static analysis for the Azul workspace.
//!
//! The cycle-level model's numbers are only meaningful if the same
//! matrix + mapping + seed always yields the same cycle count, so this
//! crate enforces determinism hygiene the compiler cannot. Version 2
//! is a **two-phase interprocedural analysis**, still dependency-free:
//!
//! 1. **Facts** ([`facts`]): a hand-rolled lexer ([`lexer`]) feeds an
//!    item/expression scanner that records, per function, its
//!    path-qualified name, the calls it makes, and its *sink facts*
//!    (panicking calls, wall-clock reads, `HashMap`/`HashSet`
//!    iteration, heap allocation, `Mutex::lock`, machine-wide array
//!    indexing).
//! 2. **Graph** ([`graph`] + [`rules`]): a workspace call graph with
//!    best-effort name resolution and a fixpoint cache of reachable
//!    sink kinds, over which the interprocedural rules run; the six
//!    original lexical rules are evaluated from the same fact
//!    database with unchanged scopes, severities and messages.
//!
//! # Lexical rules (per file)
//!
//! * [`NONDETERMINISTIC_ITERATION`] — iterating a `HashMap`/`HashSet`
//!   (`for`, `.iter()`, `.keys()`, `.values()`, `.drain()`, ...) in
//!   `crates/sim` (error), `crates/mapping` or `crates/hypergraph`
//!   (warning). Hash iteration order varies across runs and toolchains;
//!   use `BTreeMap`/`BTreeSet` or sort explicitly.
//! * [`WALL_CLOCK_IN_SIM`] — `Instant`/`SystemTime`/`thread_rng` in
//!   `crates/sim` (error). Cycle-level code must be a pure function of
//!   its inputs and seeds. One explicit carve-out: the host-profiling
//!   module `crates/sim/src/profile.rs` exists to measure *host* wall
//!   time and may use `Instant`/`SystemTime` (ambient randomness stays
//!   banned there too); every other sim file must route timing through
//!   its probes.
//! * [`UNCHECKED_FLOAT_REDUCTION`] — `.sum::<f64>()` / float `fold`
//!   reductions in `crates/sim`/`crates/solver` without a nearby
//!   `// reduction-order:` justification (warning). Float addition is
//!   not associative; the summation order must be pinned deliberately.
//! * [`PANIC_IN_SIM_HOT_PATH`] — `unwrap`/`expect`/`panic!` family
//!   macros inside functions whose name contains `tick`, `route` or
//!   `execute` in `crates/sim` (warning).
//! * [`SHARED_MUTABLE_IN_SHARD`] — indexing the machine-wide `routers`
//!   / `pes` arrays inside a function whose name contains `tick` in
//!   `crates/sim` (warning). Cross-tile effects must go through
//!   shard-local views and the barrier-applied outbox.
//! * [`UNWRAP_IN_PIPELINE`] — `.unwrap()` / `.expect(..)` inside
//!   functions whose name contains `prepare`, `solve`, `factor`,
//!   `request`, `schedule`, `admit` or `submit` in `crates/core`,
//!   `crates/solver` or `crates/serve` (warning). The degradation
//!   ladders and the service's typed shedding/retry paths can only
//!   catch failures that surface as typed errors. Test code is exempt.
//!
//! # Interprocedural rules (workspace call graph)
//!
//! * [`TRANSITIVE_PANIC_IN_HOT_PATH`] — a panic/unwrap *reachable
//!   through calls* from a tick/route/execute function in `crates/sim`
//!   (warning). The lexical rule only sees the enclosing function's
//!   name; this one follows the calls and reports the chain.
//! * [`TRANSITIVE_WALL_CLOCK`] — a wall-clock read outside the sim
//!   crate reachable from a sim entry point (tick/route/execute or
//!   `run*`) (error). Within the sim crate the lexical rule already
//!   covers every file.
//! * [`TRANSITIVE_UNWRAP_IN_PIPELINE`] — an unwrap/expect reachable
//!   from a pipeline/request-path function in `core`/`solver`/`serve`
//!   (warning).
//! * [`ALLOC_IN_TICK_PATH`] — a fresh heap allocation (`Vec::new`,
//!   `vec![..]`, `with_capacity`, `Box::new`, `.collect()`, ...)
//!   reachable from a per-cycle `tick` function in `crates/sim`
//!   (warning, waivable). Amortized growth (`.push(..)`) is recorded
//!   as a fact but not flagged. This prepares the flit-arena refactor:
//!   per-cycle allocation is the enemy of the event-driven engine.
//!
//! Interprocedural diagnostics carry a call-chain trace
//! (`root -> a -> b: sink at file:line`) both in the message and as
//! structured [`TraceStep`]s for the JSON report ([`report`]).
//!
//! # Waivers and the stale-waiver audit
//!
//! Any finding can be waived in place with
//! `// azul-lint: allow(<rule>)` on the offending line or up to three
//! lines above; allows should carry a justification in the same
//! comment. A transitive finding is waived at its *sink* line by
//! either the transitive rule name or its lexical counterpart. The
//! [`STALE_WAIVER`] audit (on by default under `--deny warnings`)
//! reports directives that no longer suppress anything and
//! `// reduction-order:` justifications with no float reduction
//! nearby; audit findings are not themselves waivable.
//!
//! The analysis stays lexical at heart: no type inference, best-effort
//! name resolution (see `docs/STATIC_ANALYSIS.md` for the honest
//! limits). That trades a few theoretically-missable cases for zero
//! dependencies and trivially auditable behavior.

#![forbid(unsafe_code)]

pub mod facts;
pub mod graph;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

pub use graph::{CallGraph, Database};
pub use report::{render_json, REPORT_SCHEMA};
pub use workspace::{analyze_root, analyze_sources, collect_rs, render_text, Analysis, Options};

use std::fmt;

/// Rule: `HashMap`/`HashSet` iteration in order-sensitive crates.
pub const NONDETERMINISTIC_ITERATION: &str = "nondeterministic-iteration";
/// Rule: wall-clock or ambient randomness in cycle-level code.
pub const WALL_CLOCK_IN_SIM: &str = "wall-clock-in-sim";
/// Rule: unjustified float reductions in sim/solver code.
pub const UNCHECKED_FLOAT_REDUCTION: &str = "unchecked-float-reduction";
/// Rule: panicking calls inside tick/route/execute hot paths.
pub const PANIC_IN_SIM_HOT_PATH: &str = "panic-in-sim-hot-path";
/// Rule: global per-tile arrays indexed inside shard tick functions.
pub const SHARED_MUTABLE_IN_SHARD: &str = "shared-mutable-in-shard";
/// Rule: panicking `.unwrap()`/`.expect()` in pipeline and service
/// request-path code.
pub const UNWRAP_IN_PIPELINE: &str = "unwrap-in-pipeline";
/// Rule: panic/unwrap reachable through calls from a sim hot path.
pub const TRANSITIVE_PANIC_IN_HOT_PATH: &str = "transitive-panic-in-hot-path";
/// Rule: wall-clock reachable from a sim entry point across crates.
pub const TRANSITIVE_WALL_CLOCK: &str = "transitive-wall-clock";
/// Rule: unwrap/expect reachable from a pipeline/request-path step.
pub const TRANSITIVE_UNWRAP_IN_PIPELINE: &str = "transitive-unwrap-in-pipeline";
/// Rule: fresh heap allocation reachable from a per-cycle tick fn.
pub const ALLOC_IN_TICK_PATH: &str = "alloc-in-tick-path";
/// Rule: a waiver or justification directive that suppresses nothing.
pub const STALE_WAIVER: &str = "stale-waiver";

/// Every rule this linter knows, in reporting order.
pub const ALL_RULES: [&str; 11] = [
    NONDETERMINISTIC_ITERATION,
    WALL_CLOCK_IN_SIM,
    UNCHECKED_FLOAT_REDUCTION,
    PANIC_IN_SIM_HOT_PATH,
    SHARED_MUTABLE_IN_SHARD,
    UNWRAP_IN_PIPELINE,
    TRANSITIVE_PANIC_IN_HOT_PATH,
    TRANSITIVE_WALL_CLOCK,
    TRANSITIVE_UNWRAP_IN_PIPELINE,
    ALLOC_IN_TICK_PATH,
    STALE_WAIVER,
];

/// Diagnostic severity. `--deny warnings` promotes warnings to failures
/// at the CLI layer; the levels themselves are fixed per rule and scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Questionable; fails only under `--deny warnings`.
    Warning,
    /// Always fails the check.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One step of an interprocedural call chain, root first. The final
/// step's `line` is the sink line; intermediate steps carry the line
/// of the call to the next function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Path-qualified function name (`sim::router::tick_router`).
    pub function: String,
    /// Workspace-relative file declaring the function.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
}

/// One finding, anchored to a line of one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// 1-based source line.
    pub line: u32,
    /// The violated rule (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// How hard the finding fails.
    pub severity: Severity,
    /// What was found and what to do about it.
    pub message: String,
    /// For interprocedural rules: the call chain from root to sink.
    /// Empty for lexical findings.
    pub trace: Vec<TraceStep>,
}

/// A diagnostic paired with the file it was found in (workspace runs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileDiagnostic {
    /// Workspace-relative path.
    pub file: String,
    pub diag: Diagnostic,
}

/// The crate-ish scope a path belongs to: `"sim"` for
/// `crates/sim/...`, `"azul"` for the root package's `src/`, the first
/// path segment otherwise (`"tests"`, `"benches"`).
pub fn scope_of(path: &str) -> &str {
    let norm = path.trim_start_matches("./");
    if let Some(rest) = norm.split("crates/").nth(1) {
        return rest.split('/').next().unwrap_or("");
    }
    if norm.starts_with("src/") || norm.contains("/src/") {
        return "azul";
    }
    norm.split('/').next().unwrap_or("")
}

/// Lints one file with the **lexical** rules only (the historical v1
/// surface, kept for embedding and tests). `path` determines the scope
/// (which rules apply and at which severity); `src` is the contents.
/// Workspace-wide interprocedural analysis lives in
/// [`workspace::analyze_root`] / [`workspace::analyze_sources`].
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let file = facts::extract(path, src);
    let mut diags = rules::lexical_diags(&file);
    diags.retain(|d| !file.allowed(d.rule, d.line));
    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    diags
}

impl facts::FileFacts {
    /// Whether `rule` is waived at `line` by an `allow(..)` directive.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.scan.allowed(rule, line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIM_PATH: &str = "crates/sim/src/fake.rs";

    fn rules_at(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn scope_resolution() {
        assert_eq!(scope_of("crates/sim/src/machine.rs"), "sim");
        assert_eq!(scope_of("./crates/mapping/src/grid.rs"), "mapping");
        assert_eq!(scope_of("src/bin/azul.rs"), "azul");
        assert_eq!(scope_of("tests/determinism.rs"), "tests");
    }

    #[test]
    fn hashmap_for_loop_is_flagged_in_sim() {
        let src = r#"
use std::collections::HashMap;
fn f() {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    for (k, v) in &m {
        let _ = (k, v);
    }
}
"#;
        let diags = lint_source(SIM_PATH, src);
        assert_eq!(rules_at(&diags), vec![NONDETERMINISTIC_ITERATION]);
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].line, 6);
    }

    #[test]
    fn hashmap_iter_methods_are_flagged() {
        let src = r#"
fn f(saac: &std::collections::HashMap<u32, u32>) {
    let _ = saac.keys().count();
    let _ = saac.values().count();
    let _ = saac.iter().count();
}
"#;
        let diags = lint_source(SIM_PATH, src);
        assert_eq!(diags.len(), 3);
        assert!(diags.iter().all(|d| d.rule == NONDETERMINISTIC_ITERATION));
    }

    #[test]
    fn btreemap_iteration_is_clean() {
        let src = r#"
use std::collections::BTreeMap;
fn f() {
    let mut m: BTreeMap<u32, u32> = BTreeMap::new();
    m.insert(1, 2);
    for (k, v) in &m {
        let _ = (k, v);
    }
    let _ = m.keys().count();
}
"#;
        assert!(lint_source(SIM_PATH, src).is_empty());
    }

    #[test]
    fn non_iterating_hash_use_is_clean() {
        // Membership tests and length checks don't depend on order.
        let src = r#"
use std::collections::HashSet;
fn f() {
    let mut s: HashSet<u32> = HashSet::new();
    s.insert(3);
    assert!(s.contains(&3));
    assert_eq!(s.len(), 1);
}
"#;
        assert!(lint_source(SIM_PATH, src).is_empty());
    }

    #[test]
    fn allow_comment_waives_on_own_and_next_line() {
        let src = r#"
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) {
    // azul-lint: allow(nondeterministic-iteration) summed, order-free
    for (_k, v) in m.iter() {
        let _ = v;
    }
}
"#;
        assert!(lint_source(SIM_PATH, src).is_empty());
    }

    #[test]
    fn mapping_scope_downgrades_to_warning() {
        let src = "fn f(m: &std::collections::HashMap<u32,u32>) { let _ = m.keys(); }";
        let diags = lint_source("crates/mapping/src/fake.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warning);
        // Out-of-scope crates are exempt entirely.
        assert!(lint_source("crates/solver/src/fake.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_flagged_only_in_sim() {
        let src = "fn f() { let t = std::time::Instant::now(); let _ = t; }";
        let diags = lint_source(SIM_PATH, src);
        assert_eq!(rules_at(&diags), vec![WALL_CLOCK_IN_SIM]);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(lint_source("crates/telemetry/src/span.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_allows_only_the_profile_module() {
        // The host-profiling module measures the simulator's own wall
        // time; `Instant`/`SystemTime` are legal there and only there.
        let clock = "fn f() { let t = std::time::Instant::now(); let _ = t; }";
        assert!(lint_source("crates/sim/src/profile.rs", clock).is_empty());
        assert!(lint_source("./crates/sim/src/profile.rs", clock).is_empty());
        // A sim file merely *named* like it elsewhere is still flagged.
        let diags = lint_source("crates/sim/src/profile_helpers.rs", clock);
        assert_eq!(rules_at(&diags), vec![WALL_CLOCK_IN_SIM]);
        // Ambient randomness has no carve-out, even in the profile
        // module.
        let rng = "fn f() { let r = rand::thread_rng(); let _ = r; }";
        let diags = lint_source("crates/sim/src/profile.rs", rng);
        assert_eq!(rules_at(&diags), vec![WALL_CLOCK_IN_SIM]);
    }

    #[test]
    fn float_sum_needs_justification() {
        let bad = "fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }";
        let diags = lint_source("crates/solver/src/fake.rs", bad);
        assert_eq!(rules_at(&diags), vec![UNCHECKED_FLOAT_REDUCTION]);

        let good = r#"
// reduction-order: slice order, fixed by construction
fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }
"#;
        assert!(lint_source("crates/solver/src/fake.rs", good).is_empty());
        // Integer sums are order-free.
        let int = "fn f(v: &[u64]) -> u64 { v.iter().sum::<u64>() }";
        assert!(lint_source("crates/solver/src/fake.rs", int).is_empty());
    }

    #[test]
    fn float_fold_needs_justification() {
        let bad = "fn f(v: &[f64]) -> f64 { v.iter().fold(0.0, |a, b| a + b) }";
        let diags = lint_source(SIM_PATH, bad);
        assert_eq!(rules_at(&diags), vec![UNCHECKED_FLOAT_REDUCTION]);
        let int = "fn f(v: &[u64]) -> u64 { v.iter().fold(0, |a, b| a + b) }";
        assert!(lint_source(SIM_PATH, int).is_empty());
    }

    #[test]
    fn panics_in_hot_paths_flagged() {
        let src = r#"
fn tick_router_at(x: Option<u32>) -> u32 {
    x.expect("has a value")
}
fn compile(x: Option<u32>) -> u32 {
    x.unwrap() // fine: not a hot path
}
"#;
        let diags = lint_source(SIM_PATH, src);
        assert_eq!(rules_at(&diags), vec![PANIC_IN_SIM_HOT_PATH]);
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn panic_macro_in_hot_path_flagged_and_allowable() {
        let bad = "fn execute(c: u32) { if c > 3 { panic!(\"boom\"); } }";
        assert_eq!(
            rules_at(&lint_source(SIM_PATH, bad)),
            vec![PANIC_IN_SIM_HOT_PATH]
        );
        let allowed = r#"
fn execute(c: u32) {
    // azul-lint: allow(panic-in-sim-hot-path) unreachable by construction
    if c > 3 { panic!("boom"); }
}
"#;
        assert!(lint_source(SIM_PATH, allowed).is_empty());
    }

    #[test]
    fn global_array_index_in_tick_fn_flagged() {
        let src = r#"
fn tick_shard(routers: &mut [u32], pes: &mut [u32], t: usize) {
    routers[t] += 1;
    let _ = pes[t];
}
fn commit(routers: &mut [u32], t: usize) {
    routers[t] += 1; // fine: not a tick function
}
"#;
        let diags = lint_source(SIM_PATH, src);
        assert_eq!(
            rules_at(&diags),
            vec![SHARED_MUTABLE_IN_SHARD, SHARED_MUTABLE_IN_SHARD]
        );
        assert_eq!(diags[0].line, 3);
        assert_eq!(diags[1].line, 4);
        assert!(diags.iter().all(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn shard_local_views_in_tick_fn_clean() {
        let src = r#"
fn tick_shard(local_routers: &mut [u32], local_pes: &mut [u32], t: usize) {
    local_routers[t] += 1;
    let _ = local_pes[t];
}
"#;
        assert!(lint_source(SIM_PATH, src).is_empty());
        // And outside the sim scope the rule does not apply at all.
        let global = "fn tick(routers: &mut [u32]) { routers[0] += 1; }";
        assert!(lint_source("crates/models/src/fake.rs", global).is_empty());
    }

    #[test]
    fn shared_mutable_waivable_with_allow() {
        let src = r#"
fn tick_routers(routers: &mut [u32], t: usize) {
    // azul-lint: allow(shared-mutable-in-shard) serial helper owns the array
    routers[t] += 1;
}
"#;
        assert!(lint_source(SIM_PATH, src).is_empty());
    }

    #[test]
    fn unwrap_in_pipeline_functions_flagged() {
        let src = r#"
fn prepare_solver(x: Option<u32>) -> u32 {
    x.unwrap()
}
fn try_solve(x: Option<u32>) -> u32 {
    x.expect("present")
}
fn ic0_factor(x: Option<u32>) -> u32 {
    x.unwrap()
}
fn compile(x: Option<u32>) -> u32 {
    x.unwrap() // fine: not a pipeline function
}
"#;
        let diags = lint_source("crates/core/src/lib.rs", src);
        assert_eq!(
            rules_at(&diags),
            vec![UNWRAP_IN_PIPELINE, UNWRAP_IN_PIPELINE, UNWRAP_IN_PIPELINE]
        );
        assert_eq!(diags[0].line, 3);
        assert!(diags.iter().all(|d| d.severity == Severity::Warning));
        // The rule covers core, solver and serve, nothing else.
        assert!(!lint_source("crates/solver/src/fake.rs", src).is_empty());
        assert!(!lint_source("crates/serve/src/fake.rs", src).is_empty());
        assert!(lint_source(SIM_PATH, src).is_empty());
    }

    #[test]
    fn unwrap_in_serve_request_paths_flagged() {
        // The service's request/scheduler vocabulary is covered: a
        // panic in any of these kills a worker thread and strands the
        // request's outcome slot.
        let src = r#"
fn run_request(x: Option<u32>) -> u32 {
    x.unwrap()
}
fn schedule_next(x: Option<u32>) -> u32 {
    x.expect("job queued")
}
fn admit(x: Option<u32>) -> u32 {
    x.unwrap()
}
fn submit_batch(x: Option<u32>) -> u32 {
    x.unwrap()
}
fn worker_loop(x: Option<u32>) -> u32 {
    x.unwrap() // fine: not a request-path name
}
"#;
        let diags = lint_source("crates/serve/src/service.rs", src);
        assert_eq!(
            rules_at(&diags),
            vec![
                UNWRAP_IN_PIPELINE,
                UNWRAP_IN_PIPELINE,
                UNWRAP_IN_PIPELINE,
                UNWRAP_IN_PIPELINE
            ]
        );
        // The request-path vocabulary applies inside core too (the
        // scope predicate and the name predicate are orthogonal).
        assert!(!lint_source("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_test_module_is_exempt() {
        let src = r#"
fn solve(x: Option<u32>) -> Option<u32> {
    x
}
#[cfg(test)]
mod tests {
    #[test]
    fn solve_works() {
        super::solve(Some(1)).unwrap();
    }
}
"#;
        assert!(lint_source("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_pipeline_waivable_with_allow() {
        let src = r#"
fn factor_all(x: Option<u32>) -> u32 {
    // azul-lint: allow(unwrap-in-pipeline) guarded by the check above
    x.unwrap()
}
"#;
        assert!(lint_source("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let src = r##"
fn f() -> &'static str {
    // for (k, v) in map.iter() { Instant::now() }
    /* HashMap::new().keys() */
    let s = "for x in hash_map.iter() { Instant }";
    let r = r#"thread_rng() HashMap"#;
    let _ = (s, r);
    "Instant::now"
}
"##;
        assert!(lint_source(SIM_PATH, src).is_empty());
    }

    #[test]
    fn field_declarations_track_hash_types() {
        let src = r#"
use std::collections::HashMap;
pub struct P {
    pub saac: HashMap<u32, (u32, u32)>,
}
impl P {
    fn g(&self) -> usize {
        self.saac.iter().count()
    }
}
"#;
        let diags = lint_source(SIM_PATH, src);
        assert_eq!(rules_at(&diags), vec![NONDETERMINISTIC_ITERATION]);
    }
}
