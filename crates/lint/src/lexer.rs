//! The token scanner underneath both analysis phases.
//!
//! A hand-rolled lexer (dependency-free, consistent with the
//! workspace's vendored-compat ethos) that turns one `.rs` file into a
//! token stream while skipping string/char literals and comments, and
//! mines lint directives (`azul-lint: allow(...)`, `reduction-order:`)
//! out of the comments it skips.
//!
//! Correctness here is load-bearing: a literal that "leaks" tokens
//! produces phantom diagnostics, and one that swallows too much hides
//! real code from every rule. The regression tests at the bottom pin
//! the two historically fragile cases — raw strings with arbitrary
//! hash counts (including `r"..."` with a trailing backslash, which is
//! *not* an escape) and nested block comments.

use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    Ident(String),
    Punct(char),
    Num { float: bool },
}

#[derive(Debug, Clone)]
pub(crate) struct Token {
    pub(crate) line: u32,
    pub(crate) tok: Tok,
}

/// A scanned file: token stream plus the directives mined from comments.
pub(crate) struct Scan {
    pub(crate) tokens: Vec<Token>,
    /// Lines carrying `azul-lint: allow(...)`, with the allowed rules.
    /// A directive covers its own line and the next three (multi-line
    /// statements put the flagged token a few lines below the comment).
    pub(crate) allows: BTreeMap<u32, Vec<String>>,
    /// Lines carrying a `reduction-order:` justification.
    pub(crate) justified: BTreeSet<u32>,
}

/// How far below its comment a directive still applies, in lines.
pub(crate) const DIRECTIVE_REACH: u32 = 3;

impl Scan {
    /// Whether `rule` (or any of its `aliases`, e.g. the lexical
    /// counterpart of a transitive rule) is waived at `line`.
    pub(crate) fn allowed_any(&self, rules: &[&str], line: u32) -> bool {
        (line.saturating_sub(DIRECTIVE_REACH)..=line).any(|l| {
            self.allows
                .get(&l)
                .is_some_and(|allowed| allowed.iter().any(|r| rules.iter().any(|q| q == r)))
        })
    }

    pub(crate) fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allowed_any(&[rule], line)
    }

    /// A `reduction-order:` comment on `line` or up to three lines above.
    pub(crate) fn reduction_justified(&self, line: u32) -> bool {
        (line.saturating_sub(DIRECTIVE_REACH)..=line).any(|l| self.justified.contains(&l))
    }
}

pub(crate) fn scan(src: &str) -> Scan {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut tokens = Vec::new();
    let mut allows: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    let mut justified = BTreeSet::new();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && i + 1 < n && b[i + 1] == '/' {
            // Line comment: mine directives. Doc comments (`///`, `//!`)
            // describe directive syntax without applying it, so only
            // plain `//` comments count.
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            let is_doc = start + 2 < i && (b[start + 2] == '/' || b[start + 2] == '!');
            if !is_doc {
                let text: String = b[start..i].iter().collect();
                parse_directives(&text, line, &mut allows, &mut justified);
            }
        } else if c == '/' && i + 1 < n && b[i + 1] == '*' {
            // Block comment; Rust block comments nest, so `/* /* */ */`
            // only closes at the *second* `*/`.
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        } else if (c == 'r' || c == 'b') && raw_or_byte_string_at(&b, i) {
            // r"...", r#"..."#, b"...", br#"..."# — skip the literal.
            i = skip_prefixed_string(&b, i, &mut line);
        } else if c == '"' {
            i = skip_string(&b, i, &mut line);
        } else if c == '\'' {
            // Lifetime ('a) or char literal ('x', '\n').
            if i + 2 < n && is_ident_start(b[i + 1]) && b[i + 2] != '\'' {
                i += 2;
                while i < n && is_ident(b[i]) {
                    i += 1;
                }
            } else {
                i += 1;
                if i < n && b[i] == '\\' {
                    i += 2;
                }
                while i < n && b[i] != '\'' {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i += 1;
            }
        } else if is_ident_start(c) {
            let start = i;
            while i < n && is_ident(b[i]) {
                i += 1;
            }
            tokens.push(Token {
                line,
                tok: Tok::Ident(b[start..i].iter().collect()),
            });
        } else if c.is_ascii_digit() {
            let mut float = false;
            while i < n {
                if b[i].is_alphanumeric() || b[i] == '_' {
                    i += 1;
                } else if b[i] == '.' && !float && i + 1 < n && b[i + 1].is_ascii_digit() {
                    // `1.5` continues the literal; `0..n` is a range.
                    float = true;
                    i += 1;
                } else {
                    break;
                }
            }
            tokens.push(Token {
                line,
                tok: Tok::Num { float },
            });
        } else {
            tokens.push(Token {
                line,
                tok: Tok::Punct(c),
            });
            i += 1;
        }
    }
    Scan {
        tokens,
        allows,
        justified,
    }
}

/// Whether the `r`/`b` at `i` starts a (raw/byte) string rather than an
/// identifier: an optional second prefix letter, any number of hashes,
/// then a quote.
fn raw_or_byte_string_at(b: &[char], i: usize) -> bool {
    let mut j = i + 1;
    if j < b.len() && (b[j] == 'r' || b[j] == 'b') && b[i] != b[j] {
        j += 1; // br / rb prefixes
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    // `r#ident` is a raw identifier, not a string: require a quote, and
    // plain `r#` (one hash, no quote) must fall through to ident.
    if j >= b.len() || b[j] != '"' {
        return false;
    }
    // Hashes are only legal on raw strings (`r`/`br`/`rb` prefix).
    let has_r = b[i] == 'r' || (i + 1 < b.len() && b[i + 1] == 'r');
    hashes == 0 || has_r
}

/// Skips an `r"..."` / `r#"..."#` / `b"..."` / `br#"..."#` literal.
///
/// The critical distinction: **raw** strings (any prefix containing
/// `r`) have *no* escape processing at all — `r"\"` is a complete
/// string holding one backslash — while plain byte strings (`b"..."`)
/// honor `\"` escapes like ordinary strings. Conflating the two makes
/// the lexer swallow everything after a raw string whose last character
/// is a backslash.
fn skip_prefixed_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    let mut raw = false;
    while i < b.len() && (b[i] == 'r' || b[i] == 'b') {
        raw |= b[i] == 'r';
        i += 1;
    }
    let mut hashes = 0usize;
    while i < b.len() && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    debug_assert!(i < b.len() && b[i] == '"');
    i += 1;
    while i < b.len() {
        if b[i] == '\n' {
            *line += 1;
            i += 1;
        } else if b[i] == '"' {
            // need `hashes` following '#'s to close
            let mut k = 0;
            while k < hashes && i + 1 + k < b.len() && b[i + 1 + k] == '#' {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
            i += 1;
        } else if !raw && b[i] == '\\' {
            // Non-raw byte strings honor escapes, including the
            // line-continuation `\<newline>`.
            if i + 1 < b.len() && b[i + 1] == '\n' {
                *line += 1;
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    i
}

fn skip_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            '\\' => {
                // An escaped newline (string continuation) still ends a
                // source line; keep the line counter honest.
                if i + 1 < b.len() && b[i + 1] == '\n' {
                    *line += 1;
                }
                i += 2;
            }
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

fn parse_directives(
    comment: &str,
    line: u32,
    allows: &mut BTreeMap<u32, Vec<String>>,
    justified: &mut BTreeSet<u32>,
) {
    if comment.contains("reduction-order:") {
        justified.insert(line);
    }
    let Some(pos) = comment.find("azul-lint:") else {
        return;
    };
    let rest = &comment[pos + "azul-lint:".len()..];
    let Some(open) = rest.find("allow(") else {
        return;
    };
    let args = &rest[open + "allow(".len()..];
    let Some(close) = args.find(')') else {
        return;
    };
    let rules = args[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty());
    allows.entry(line).or_default().extend(rules);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn raw_strings_with_arbitrary_hash_counts_do_not_leak() {
        // The quote-hash closers inside must not end the literal early.
        let src = r####"
fn f() {
    let a = r"plain raw";
    let b = r#"one "quoted" hash"#;
    let c = r##"has "# inside"##;
    let d = r###"has "## inside"###;
    after_raw();
}
"####;
        let ids = idents(src);
        assert!(ids.contains(&"after_raw".to_string()), "{ids:?}");
        assert!(
            !ids.iter().any(|s| s == "quoted" || s == "inside"),
            "raw string contents leaked: {ids:?}"
        );
    }

    #[test]
    fn raw_string_trailing_backslash_is_not_an_escape() {
        // `r"\"` is a COMPLETE raw string containing one backslash; a
        // lexer that treats `\"` as an escape swallows the closing
        // quote and everything after it. The code following the
        // literal must still tokenize.
        let src = "fn f() { let p = r\"\\\"; visible_after(); }";
        let ids = idents(src);
        assert!(ids.contains(&"visible_after".to_string()), "{ids:?}");
        // Same with a hash count: `r#"...\"#`.
        let src2 = "fn f() { let p = r#\"also ends in \\\"#; tail_token(); }";
        let ids2 = idents(src2);
        assert!(ids2.contains(&"tail_token".to_string()), "{ids2:?}");
    }

    #[test]
    fn byte_strings_still_honor_escapes() {
        // In `b"\""` the escaped quote does NOT close the literal.
        let src = "fn f() { let p = b\"\\\" still inside\"; after_byte(); }";
        let ids = idents(src);
        assert!(ids.contains(&"after_byte".to_string()), "{ids:?}");
        assert!(!ids.contains(&"inside".to_string()), "{ids:?}");
    }

    #[test]
    fn raw_identifiers_are_not_strings() {
        let ids = idents("fn f() { let r#type = 1; let _ = r#type; }");
        assert!(ids.contains(&"type".to_string()), "{ids:?}");
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let src = "/* outer /* inner */ still a comment */ fn after_comment() {}";
        let ids = idents(src);
        assert!(ids.contains(&"after_comment".to_string()), "{ids:?}");
        assert!(!ids.contains(&"inner".to_string()), "{ids:?}");
        assert!(!ids.contains(&"still".to_string()), "{ids:?}");
    }

    #[test]
    fn nested_block_comment_line_numbers_stay_aligned() {
        let src = "/* line1\n /* line2\n */ line3\n*/\nfn g() {}\n";
        let s = scan(src);
        let g = s
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("g".into()))
            .unwrap();
        assert_eq!(g.line, 5);
    }

    #[test]
    fn multiline_raw_string_line_numbers_stay_aligned() {
        let src = "fn f() {\n    let s = r#\"a\nb\nc\"#;\n    let marker = 1;\n}\n";
        let s = scan(src);
        let m = s
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("marker".into()))
            .unwrap();
        assert_eq!(m.line, 5);
    }

    #[test]
    fn escaped_newline_in_string_counts_the_line() {
        let src = "fn f() {\n    let s = \"a\\\nb\";\n    let marker = 1;\n}\n";
        let s = scan(src);
        let m = s
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("marker".into()))
            .unwrap();
        assert_eq!(m.line, 4);
    }

    #[test]
    fn directives_are_mined_from_comments() {
        let src = "// azul-lint: allow(some-rule, other-rule) justified\n\
                   // reduction-order: slice order\n\
                   fn f() {}\n";
        let s = scan(src);
        assert_eq!(
            s.allows.get(&1),
            Some(&vec!["some-rule".to_string(), "other-rule".to_string()])
        );
        assert!(s.justified.contains(&2));
        assert!(s.allowed("some-rule", 4)); // reach: 3 lines below
        assert!(!s.allowed("some-rule", 5));
    }

    #[test]
    fn directives_inside_strings_are_not_directives() {
        let src = "fn f() { let s = \"azul-lint: allow(fake-rule)\"; }";
        assert!(scan(src).allows.is_empty());
    }

    #[test]
    fn doc_comments_describe_directives_without_applying_them() {
        let src = "//! Uses `azul-lint: allow(doc-rule)` and `// reduction-order:`.\n\
                   /// Same here: azul-lint: allow(doc-rule) // reduction-order: x\n\
                   // azul-lint: allow(real-rule)\n\
                   fn f() {}\n";
        let s = scan(src);
        assert!(!s.allows.contains_key(&1));
        assert!(!s.allows.contains_key(&2));
        assert!(s.justified.is_empty());
        assert_eq!(s.allows.get(&3), Some(&vec!["real-rule".to_string()]));
    }
}
