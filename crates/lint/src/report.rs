//! Deterministic machine-readable output.
//!
//! A hand-rolled JSON writer (no serde in this workspace) that renders
//! an [`crate::Analysis`] with **byte-deterministic** output: object
//! keys are emitted in fixed alphabetical order, diagnostics are
//! pre-sorted by `(file, line, rule, message)`, and nothing
//! environment-dependent (absolute paths, timestamps) is included.
//! The field vocabulary — `rule`, `level`, `location` (`file` +
//! `line`), `trace` — is chosen to map 1:1 onto SARIF
//! (`ruleId`/`level`/`physicalLocation`/`codeFlows`) so CI can convert
//! or consume it directly for GitHub annotations.

use crate::{Analysis, Severity};

/// Schema identifier embedded in every report.
pub const REPORT_SCHEMA: &str = "azul-lint-report/2";

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders the JSON report. Keys in alphabetical order at every level;
/// repeated runs over the same tree produce identical bytes.
pub fn render_json(analysis: &Analysis) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"diagnostics\": [");
    for (i, fd) in analysis.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n      \"level\": \"");
        out.push_str(match fd.diag.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        });
        out.push_str("\",\n      \"location\": { \"file\": \"");
        escape_into(&mut out, &fd.file);
        out.push_str("\", \"line\": ");
        out.push_str(&fd.diag.line.to_string());
        out.push_str(" },\n      \"message\": \"");
        escape_into(&mut out, &fd.diag.message);
        out.push_str("\",\n      \"rule\": \"");
        escape_into(&mut out, fd.diag.rule);
        out.push_str("\",\n      \"trace\": [");
        for (j, step) in fd.diag.trace.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("\n        { \"file\": \"");
            escape_into(&mut out, &step.file);
            out.push_str("\", \"function\": \"");
            escape_into(&mut out, &step.function);
            out.push_str("\", \"line\": ");
            out.push_str(&step.line.to_string());
            out.push_str(" }");
        }
        if !fd.diag.trace.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("]\n    }");
    }
    if !analysis.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"schema\": \"");
    out.push_str(REPORT_SCHEMA);
    out.push_str("\",\n  \"summary\": { \"errors\": ");
    out.push_str(&analysis.errors().to_string());
    out.push_str(", \"files\": ");
    out.push_str(&analysis.files.len().to_string());
    out.push_str(", \"warnings\": ");
    out.push_str(&analysis.warnings().to_string());
    out.push_str(" }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::{analyze_sources, Options};

    #[test]
    fn json_is_byte_deterministic_and_well_formed() {
        let files = vec![
            (
                "crates/sim/src/machine.rs".to_string(),
                "fn tick(x: Option<u32>) { helper(x); }\n\
                 fn helper(x: Option<u32>) { x.expect(\"boom \\\"quoted\\\"\"); }\n"
                    .to_string(),
            ),
            (
                "crates/sim/src/other.rs".to_string(),
                "use std::time::Instant;\n".to_string(),
            ),
        ];
        let a1 = analyze_sources(files.clone(), &Options::default());
        let a2 = analyze_sources(files, &Options::default());
        let j1 = render_json(&a1);
        let j2 = render_json(&a2);
        assert_eq!(j1, j2, "repeated runs must render identical bytes");
        assert!(j1.contains("\"schema\": \"azul-lint-report/2\""));
        assert!(j1.contains("\"rule\": \"transitive-panic-in-hot-path\""));
        // Crude balance check on the emitted structure.
        let opens = j1.matches('{').count();
        let closes = j1.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn strings_are_escaped() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn empty_analysis_renders_stable_skeleton() {
        let a = analyze_sources(
            vec![(
                "crates/models/src/ok.rs".to_string(),
                "fn f() {}\n".to_string(),
            )],
            &Options::default(),
        );
        let j = render_json(&a);
        assert!(j.contains("\"diagnostics\": []"));
        assert!(j.contains("\"errors\": 0, \"files\": 1, \"warnings\": 0"));
    }
}
