//! Phase 1: the per-file fact database.
//!
//! One pass over a file's token stream (see [`crate::lexer`]) records,
//! per function: its path-qualified name, the calls it makes (method
//! and free/associated, with the path qualifier when written), and its
//! *sink facts* — panicking calls, wall-clock uses, `HashMap`/`HashSet`
//! iteration, heap-allocating calls, `Mutex::lock`, float reductions,
//! and machine-wide array indexing. Phase 2 ([`crate::graph`] +
//! [`crate::rules`]) builds the workspace call graph over these facts
//! and evaluates both the lexical and the interprocedural rules.
//!
//! The scanner is item-aware but intentionally shallow: brace depth +
//! `impl`/`mod`/`fn` stacks, no type inference. What it cannot know
//! (receiver types, trait dispatch) the resolution heuristics in
//! [`crate::graph`] approximate by name; the limits are documented in
//! `docs/STATIC_ANALYSIS.md`.

use crate::lexer::{scan, Scan, Tok, Token};
use crate::scope_of;

/// What kind of effect a sink fact records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SinkKind {
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    PanicMacro,
    /// `.unwrap()` / `.expect(..)`.
    Unwrap,
    /// `Instant` / `SystemTime` / `thread_rng` token.
    WallClock,
    /// Order-dependent iteration over a `HashMap`/`HashSet` binding.
    HashIter,
    /// `.sum::<f64>()` or float `fold` reduction.
    FloatReduction,
    /// A call that freshly allocates (or constructs a growable
    /// container): `Vec::new`, `vec![..]`, `with_capacity`,
    /// `Box::new`, `.collect()`, `.to_vec()`, `format!`, ...
    AllocConstruct,
    /// Amortized growth of an existing container: `.push(..)`,
    /// `.extend(..)`, `.insert(..)`, ... Recorded as a fact (the
    /// flit-arena refactor needs the map) but not flagged by
    /// `alloc-in-tick-path`, which targets per-call fresh allocations.
    AllocGrow,
    /// `.lock()` — recorded for future contention rules.
    Lock,
    /// Machine-wide `routers[..]` / `pes[..]` indexing.
    SharedIndex,
}

/// One sink fact, anchored to a line of the declaring file.
#[derive(Debug, Clone)]
pub struct Sink {
    pub kind: SinkKind,
    pub line: u32,
    /// What syntactically triggered the fact (`"unwrap"`, `"Instant"`,
    /// `"Vec::new"`, or a preformatted fragment for `HashIter`).
    pub what: String,
    /// For `FloatReduction`: a `// reduction-order:` comment is nearby.
    pub justified: bool,
    /// For `Unwrap`: the receiver is a `.lock()` call, so the unwrap is
    /// a mutex poison guard. Poisoning only happens after another
    /// thread has already panicked, so converting the unwrap to a typed
    /// error cannot improve recovery; `transitive-unwrap-in-pipeline`
    /// skips these.
    pub poison_guard: bool,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Bare callee name (`tick_router`, `push`, `new`).
    pub name: String,
    pub line: u32,
    /// `receiver.name(..)` method-call syntax.
    pub method: bool,
    /// Path segments written before the name (`Router::new` → `["Router"]`,
    /// `crate::profile::scope` → `["crate", "profile"]`).
    pub qualifier: Vec<String>,
}

/// One function (free, associated, or trait-default) found in a file.
#[derive(Debug, Clone)]
pub struct FnFact {
    /// Bare name.
    pub name: String,
    /// Path-qualified name: `scope::module::Type::name`.
    pub qualified: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Inside a `#[cfg(test)]` module or carrying `#[test]`.
    pub is_test: bool,
    /// Enclosing `impl`/`trait` type name, if any.
    pub in_impl: Option<String>,
    pub calls: Vec<CallSite>,
    pub sinks: Vec<Sink>,
}

/// Everything phase 1 knows about one file.
pub struct FileFacts {
    pub path: String,
    pub scope: String,
    pub fns: Vec<FnFact>,
    /// Sinks found outside any function body (`use` statements, consts).
    pub orphan_sinks: Vec<Sink>,
    pub(crate) scan: Scan,
}

const KEYWORDS: [&str; 31] = [
    "let", "mut", "pub", "fn", "if", "else", "match", "return", "for", "in", "impl", "use", "mod",
    "struct", "enum", "trait", "where", "unsafe", "dyn", "ref", "break", "continue", "crate",
    "super", "self", "Self", "static", "const", "type", "while", "loop",
];

/// Iteration methods whose order follows the container's.
const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Container types whose constructors count as allocation sinks.
const ALLOC_TYPES: [&str; 8] = [
    "Vec", "VecDeque", "String", "Box", "HashMap", "HashSet", "BTreeMap", "BTreeSet",
];

/// Method calls that freshly allocate.
const ALLOC_METHODS: [&str; 4] = ["collect", "to_vec", "to_string", "to_owned"];

/// Method calls that grow an existing container (amortized).
const GROW_METHODS: [&str; 7] = [
    "push",
    "push_back",
    "push_front",
    "extend",
    "insert",
    "reserve",
    "append",
];

/// The machine-wide per-tile arrays a shard tick must never index.
const SHARD_GLOBAL_ARRAYS: [&str; 2] = ["routers", "pes"];

fn ident(t: &Token) -> Option<&str> {
    match &t.tok {
        Tok::Ident(s) => Some(s),
        _ => None,
    }
}

fn punct(t: &Token, c: char) -> bool {
    t.tok == Tok::Punct(c)
}

/// The module path of a file, derived from its workspace-relative path:
/// `crates/sim/src/router.rs` → `["router"]`, `src/bin/azul.rs` →
/// `["bin", "azul"]`, `tests/determinism.rs` → `["determinism"]`.
/// `lib`/`main`/`mod` stems vanish, matching Rust's module naming.
fn module_path(path: &str) -> Vec<String> {
    let norm = path.trim_start_matches("./");
    let norm = norm.strip_suffix(".rs").unwrap_or(norm);
    let mut segs: Vec<&str> = norm.split('/').filter(|s| !s.is_empty()).collect();
    if segs.first() == Some(&"crates") {
        segs.drain(..2.min(segs.len()));
        if segs.first() == Some(&"src") {
            segs.remove(0);
        }
    } else if segs.first() == Some(&"src") {
        segs.remove(0);
    } else if segs.len() > 1 {
        // `tests/foo.rs`, `examples/foo.rs`: the directory is the scope.
        segs.remove(0);
    }
    if matches!(segs.last(), Some(&"lib") | Some(&"main") | Some(&"mod")) {
        segs.pop();
    }
    segs.into_iter().map(str::to_string).collect()
}

/// Returns the token index of the call's `(`, skipping an optional
/// `::<..>` turbofish after the name at `i`. `None` when not a call.
fn call_paren(toks: &[Token], i: usize) -> Option<usize> {
    let next = toks.get(i + 1)?;
    if punct(next, '(') {
        return Some(i + 1);
    }
    // `name::<T, U>(..)`
    if punct(next, ':') && toks.get(i + 2).is_some_and(|t| punct(t, ':')) {
        let mut j = i + 3;
        if !toks.get(j).is_some_and(|t| punct(t, '<')) {
            return None;
        }
        let mut depth = 0i32;
        while j < toks.len() {
            if punct(&toks[j], '<') {
                depth += 1;
            } else if punct(&toks[j], '>') {
                // `->` inside generic bounds is not a closer.
                if !(j > 0 && punct(&toks[j - 1], '-')) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            j += 1;
        }
        if depth == 0 && toks.get(j + 1).is_some_and(|t| punct(t, '(')) {
            return Some(j + 1);
        }
    }
    None
}

/// The `::`-joined path written immediately before the ident at `i`:
/// `a::b::name` → `["a", "b"]`.
fn path_qualifier(toks: &[Token], i: usize) -> Vec<String> {
    let mut segs = Vec::new();
    let mut j = i;
    while j >= 3
        && punct(&toks[j - 1], ':')
        && punct(&toks[j - 2], ':')
        && ident(&toks[j - 3]).is_some()
    {
        segs.push(ident(&toks[j - 3]).unwrap().to_string());
        j -= 3;
    }
    segs.reverse();
    segs
}

/// Scans one file into its fact record.
pub fn extract(path: &str, src: &str) -> FileFacts {
    let scope = scope_of(path).to_string();
    let scan = scan(src);
    let toks = &scan.tokens;
    let module = module_path(path);

    let mut fns: Vec<FnFact> = Vec::new();
    // Per-token enclosing function (index into `fns`), for the
    // hash-iteration pass below.
    let mut tok_fn: Vec<i32> = vec![-1; toks.len()];

    let mut depth = 0i32;
    // (fn index, body depth)
    let mut fn_stack: Vec<(usize, i32)> = Vec::new();
    // (mod name, depth, is_test)
    let mut mod_stack: Vec<(String, i32, bool)> = Vec::new();
    // (impl/trait type name, depth)
    let mut impl_stack: Vec<(String, i32)> = Vec::new();

    let mut pending_fn: Option<(String, u32, bool)> = None; // name, line, is_test
    let mut pending_impl: Option<String> = None;
    let mut pending_test_attr = false;
    let mut pending_cfg_test = false;
    let mut orphan_sinks: Vec<Sink> = Vec::new();

    let push_sink =
        |fn_stack: &[(usize, i32)], fns: &mut Vec<FnFact>, orphans: &mut Vec<Sink>, sink: Sink| {
            match fn_stack.last() {
                Some(&(f, _)) => fns[f].sinks.push(sink),
                None => orphans.push(sink),
            }
        };

    let mut i = 0usize;
    while i < toks.len() {
        if let Some(&(f, _)) = fn_stack.last() {
            tok_fn[i] = f as i32;
        }
        let t = &toks[i];
        match &t.tok {
            // ---- attributes --------------------------------------
            Tok::Punct('#') if toks.get(i + 1).is_some_and(|t| punct(t, '[')) => {
                if toks.get(i + 2).and_then(ident) == Some("cfg")
                    && toks.get(i + 3).is_some_and(|t| punct(t, '('))
                    && toks.get(i + 4).and_then(ident) == Some("test")
                {
                    pending_cfg_test = true;
                } else if toks.get(i + 2).and_then(ident) == Some("test")
                    && toks.get(i + 3).is_some_and(|t| punct(t, ']'))
                {
                    pending_test_attr = true;
                }
            }
            // ---- items -------------------------------------------
            Tok::Ident(w) if w == "fn" => {
                if let Some(Some(name)) = toks.get(i + 1).map(ident) {
                    let in_test_mod = mod_stack.iter().any(|&(_, _, test)| test);
                    pending_fn = Some((
                        name.to_string(),
                        toks[i].line,
                        in_test_mod || pending_test_attr,
                    ));
                }
                pending_test_attr = false;
                pending_cfg_test = false;
            }
            // `impl` in type position (`-> impl Trait`, `x: impl T`)
            // only appears inside signatures/bodies; item position is
            // outside any fn with no fn pending.
            Tok::Ident(w)
                if (w == "impl" || w == "trait") && fn_stack.is_empty() && pending_fn.is_none() =>
            {
                pending_impl = impl_target(toks, i);
            }
            Tok::Punct(';') => {
                pending_fn = None; // bodyless trait method / extern decl
                pending_impl = None;
            }
            Tok::Punct('{') => {
                depth += 1;
                if let Some((name, line, is_test)) = pending_fn.take() {
                    let mut q: Vec<&str> = vec![scope.as_str()];
                    q.extend(module.iter().map(String::as_str));
                    for (m, _, _) in &mod_stack {
                        q.push(m);
                    }
                    if let Some((ty, _)) = impl_stack.last() {
                        q.push(ty);
                    }
                    q.push(&name);
                    fns.push(FnFact {
                        name: name.clone(),
                        qualified: q.join("::"),
                        line,
                        is_test,
                        in_impl: impl_stack.last().map(|(ty, _)| ty.clone()),
                        calls: Vec::new(),
                        sinks: Vec::new(),
                    });
                    fn_stack.push((fns.len() - 1, depth));
                } else if let Some(ty) = pending_impl.take() {
                    impl_stack.push((ty, depth));
                } else if i >= 2 && ident(&toks[i - 2]) == Some("mod") {
                    let name = ident(&toks[i - 1]).unwrap_or("_").to_string();
                    let parent_test = mod_stack.iter().any(|&(_, _, test)| test);
                    mod_stack.push((name, depth, parent_test || pending_cfg_test));
                }
                pending_cfg_test = false;
            }
            Tok::Punct('}') => {
                if fn_stack.last().is_some_and(|&(_, d)| d == depth) {
                    fn_stack.pop();
                }
                if impl_stack.last().is_some_and(|&(_, d)| d == depth) {
                    impl_stack.pop();
                }
                if mod_stack.last().is_some_and(|&(_, d, _)| d == depth) {
                    mod_stack.pop();
                }
                depth -= 1;
            }
            // ---- sinks & calls -----------------------------------
            Tok::Ident(w) => {
                let line = t.line;
                let prev_dot = i > 0 && punct(&toks[i - 1], '.');
                let next_bang = toks.get(i + 1).is_some_and(|t| punct(t, '!'));

                // Panic-family macros.
                if next_bang
                    && matches!(
                        w.as_str(),
                        "panic" | "unreachable" | "todo" | "unimplemented"
                    )
                {
                    push_sink(
                        &fn_stack,
                        &mut fns,
                        &mut orphan_sinks,
                        Sink {
                            kind: SinkKind::PanicMacro,
                            line,
                            what: w.clone(),
                            justified: false,
                            poison_guard: false,
                        },
                    );
                }
                // Allocating macros.
                if next_bang && (w == "vec" || w == "format") {
                    push_sink(
                        &fn_stack,
                        &mut fns,
                        &mut orphan_sinks,
                        Sink {
                            kind: SinkKind::AllocConstruct,
                            line,
                            what: format!("{w}!"),
                            justified: false,
                            poison_guard: false,
                        },
                    );
                }
                // Wall clock / ambient randomness: any token counts
                // (`use` statements included), matching the historical
                // lexical rule.
                if w == "Instant" || w == "SystemTime" || w == "thread_rng" {
                    push_sink(
                        &fn_stack,
                        &mut fns,
                        &mut orphan_sinks,
                        Sink {
                            kind: SinkKind::WallClock,
                            line,
                            what: w.clone(),
                            justified: false,
                            poison_guard: false,
                        },
                    );
                }
                // Machine-wide per-tile array indexing.
                if SHARD_GLOBAL_ARRAYS.contains(&w.as_str())
                    && toks.get(i + 1).is_some_and(|t| punct(t, '['))
                {
                    push_sink(
                        &fn_stack,
                        &mut fns,
                        &mut orphan_sinks,
                        Sink {
                            kind: SinkKind::SharedIndex,
                            line,
                            what: w.clone(),
                            justified: false,
                            poison_guard: false,
                        },
                    );
                }

                if prev_dot {
                    if let Some(paren) = call_paren(toks, i) {
                        method_call_sinks(
                            &scan,
                            toks,
                            i,
                            paren,
                            w,
                            line,
                            &fn_stack,
                            &mut fns,
                            &mut orphan_sinks,
                        );
                        if let Some(&(f, _)) = fn_stack.last() {
                            fns[f].calls.push(CallSite {
                                name: w.clone(),
                                line,
                                method: true,
                                qualifier: Vec::new(),
                            });
                        }
                    }
                } else if call_paren(toks, i).is_some()
                    && !KEYWORDS.contains(&w.as_str())
                    && i > 0
                    && ident(&toks[i - 1]) != Some("fn")
                {
                    let qualifier = path_qualifier(toks, i);
                    // Container constructors as allocation sinks.
                    if matches!(w.as_str(), "new" | "with_capacity" | "from")
                        && qualifier
                            .last()
                            .is_some_and(|q| ALLOC_TYPES.contains(&q.as_str()))
                    {
                        push_sink(
                            &fn_stack,
                            &mut fns,
                            &mut orphan_sinks,
                            Sink {
                                kind: SinkKind::AllocConstruct,
                                line,
                                what: format!("{}::{w}", qualifier.last().unwrap()),
                                justified: false,
                                poison_guard: false,
                            },
                        );
                    }
                    if let Some(&(f, _)) = fn_stack.last() {
                        fns[f].calls.push(CallSite {
                            name: w.clone(),
                            line,
                            method: false,
                            qualifier,
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }

    hash_iteration_sinks(&scan, &tok_fn, &mut fns, &mut orphan_sinks);

    FileFacts {
        path: path.to_string(),
        scope,
        fns,
        orphan_sinks,
        scan,
    }
}

/// Sinks triggered by a method call `recv.name(..)` at ident `i` with
/// the call's `(` at `paren`.
#[allow(clippy::too_many_arguments)]
/// Whether the `unwrap`/`expect` at token `i` is applied directly to a
/// `.lock(..)` receiver — the `x.lock().unwrap()` mutex poison guard.
fn is_poison_guard(toks: &[Token], i: usize) -> bool {
    // Expect the shape `. lock ( .. ) . unwrap`: walk back over the
    // receiver call's parentheses from the `)` at `i - 2`.
    if i < 2 || !punct(&toks[i - 1], '.') || !punct(&toks[i - 2], ')') {
        return false;
    }
    let mut j = i - 2;
    let mut depth = 1u32;
    while depth > 0 {
        if j == 0 {
            return false;
        }
        j -= 1;
        if punct(&toks[j], ')') {
            depth += 1;
        } else if punct(&toks[j], '(') {
            depth -= 1;
        }
    }
    j >= 2 && ident(&toks[j - 1]) == Some("lock") && punct(&toks[j - 2], '.')
}

#[allow(clippy::too_many_arguments)] // one scan cursor, fanned out
fn method_call_sinks(
    scan: &Scan,
    toks: &[Token],
    i: usize,
    paren: usize,
    name: &str,
    line: u32,
    fn_stack: &[(usize, i32)],
    fns: &mut [FnFact],
    orphans: &mut Vec<Sink>,
) {
    let mut push = |sink: Sink| match fn_stack.last() {
        Some(&(f, _)) => fns[f].sinks.push(sink),
        None => orphans.push(sink),
    };
    match name {
        "unwrap" | "expect" => push(Sink {
            kind: SinkKind::Unwrap,
            line,
            what: name.to_string(),
            justified: false,
            poison_guard: is_poison_guard(toks, i),
        }),
        "lock" => push(Sink {
            kind: SinkKind::Lock,
            line,
            what: ".lock()".to_string(),
            justified: false,
            poison_guard: false,
        }),
        m if ALLOC_METHODS.contains(&m) => push(Sink {
            kind: SinkKind::AllocConstruct,
            line,
            what: format!(".{m}()"),
            justified: false,
            poison_guard: false,
        }),
        m if GROW_METHODS.contains(&m) => push(Sink {
            kind: SinkKind::AllocGrow,
            line,
            what: format!(".{m}()"),
            justified: false,
            poison_guard: false,
        }),
        "sum" => {
            // `.sum::<f64>()` turbofish.
            let is_f64 = punct(&toks[i + 1], ':')
                && toks.get(i + 2).is_some_and(|t| punct(t, ':'))
                && toks.get(i + 3).is_some_and(|t| punct(t, '<'))
                && toks.get(i + 4).and_then(ident) == Some("f64");
            if is_f64 {
                push(Sink {
                    kind: SinkKind::FloatReduction,
                    line,
                    what: "`.sum::<f64>()`".to_string(),
                    justified: scan.reduction_justified(line),
                    poison_guard: false,
                });
            }
        }
        "fold" => {
            // Float accumulator: a float literal or f64 in the first
            // few argument tokens.
            let floaty = toks[paren + 1..]
                .iter()
                .take(6)
                .any(|t| matches!(t.tok, Tok::Num { float: true }) || ident(t) == Some("f64"));
            if floaty {
                push(Sink {
                    kind: SinkKind::FloatReduction,
                    line,
                    what: "float `fold`".to_string(),
                    justified: scan.reduction_justified(line),
                    poison_guard: false,
                });
            }
        }
        _ => {}
    }
}

/// The two-pass hash-iteration detector: pass 1 collects names bound to
/// `HashMap`/`HashSet` values anywhere in the file (declarations
/// `name: HashMap<..>` and initializers `let name = HashMap::new()`);
/// pass 2 records iteration over them as `HashIter` sinks, attributed
/// to the enclosing function via `tok_fn`.
fn hash_iteration_sinks(scan: &Scan, tok_fn: &[i32], fns: &mut [FnFact], orphans: &mut Vec<Sink>) {
    use std::collections::BTreeSet;
    let toks = &scan.tokens;
    let mut hash_names: BTreeSet<String> = BTreeSet::new();
    let mut current_let: Option<String> = None;
    for i in 0..toks.len() {
        match ident(&toks[i]) {
            Some("let") => {
                let mut j = i + 1;
                if ident(&toks[j.min(toks.len() - 1)]) == Some("mut") {
                    j += 1;
                }
                if let Some(Some(name)) = toks.get(j).map(ident) {
                    if !KEYWORDS.contains(&name) {
                        current_let = Some(name.to_string());
                    }
                }
            }
            Some("HashMap") | Some("HashSet") => {
                // Walk back over the type path / annotation syntax to the
                // bound name: `name : [&] [std :: collections ::] HashMap`.
                let mut j = i;
                while j > 0 {
                    j -= 1;
                    match &toks[j].tok {
                        Tok::Punct(':') | Tok::Punct('&') => continue,
                        Tok::Ident(w) if w == "std" || w == "collections" || w == "mut" => continue,
                        Tok::Ident(w) if !KEYWORDS.contains(&w.as_str()) => {
                            hash_names.insert(w.clone());
                            break;
                        }
                        _ => {
                            // `= HashMap::new()` or a generic position:
                            // attribute to the current let binding.
                            if let Some(name) = &current_let {
                                hash_names.insert(name.clone());
                            }
                            break;
                        }
                    }
                }
            }
            _ => {}
        }
        if punct(&toks[i], ';') {
            current_let = None;
        }
    }
    if hash_names.is_empty() {
        return;
    }

    let mut record = |idx: usize, what: String| {
        let sink = Sink {
            kind: SinkKind::HashIter,
            line: toks[idx].line,
            what,
            justified: false,
            poison_guard: false,
        };
        match tok_fn.get(idx).copied().unwrap_or(-1) {
            f if f >= 0 => fns[f as usize].sinks.push(sink),
            _ => orphans.push(sink),
        }
    };

    // Method calls: `name.iter()`, `self.name.keys()`, ...
    for i in 2..toks.len() {
        let Some(m) = ident(&toks[i]) else { continue };
        if !ITER_METHODS.contains(&m) || !punct(&toks[i - 1], '.') {
            continue;
        }
        if toks.get(i + 1).is_none_or(|t| !punct(t, '(')) {
            continue;
        }
        if let Some(recv) = ident(&toks[i - 2]) {
            if hash_names.contains(recv) {
                record(
                    i,
                    format!(
                        "`{recv}.{m}()` iterates a HashMap/HashSet in unspecified order; \
                         use BTreeMap/BTreeSet or collect-and-sort"
                    ),
                );
            }
        }
    }

    // `for pat in [&[mut]] path.to.name {` — only simple paths; method
    // calls in the iterable are covered by the pass above.
    for i in 0..toks.len() {
        if ident(&toks[i]) != Some("for") {
            continue;
        }
        // Find `in` before the body brace.
        let mut j = i + 1;
        let mut in_at = None;
        while j < toks.len() && !punct(&toks[j], '{') && !punct(&toks[j], ';') {
            if ident(&toks[j]) == Some("in") {
                in_at = Some(j);
                break;
            }
            j += 1;
        }
        let Some(start) = in_at else { continue };
        let mut k = start + 1;
        let mut last_name: Option<&str> = None;
        let mut simple = true;
        while k < toks.len() && !punct(&toks[k], '{') {
            match &toks[k].tok {
                Tok::Ident(w) => last_name = Some(w),
                Tok::Punct('&') | Tok::Punct('.') => {}
                Tok::Punct(_) | Tok::Num { .. } => {
                    simple = false;
                    break;
                }
            }
            k += 1;
        }
        if !simple {
            continue;
        }
        if let Some(name) = last_name {
            if hash_names.contains(name) {
                record(
                    i,
                    format!(
                        "`for .. in {name}` iterates a HashMap/HashSet in unspecified \
                         order; use BTreeMap/BTreeSet or collect-and-sort"
                    ),
                );
            }
        }
    }
}

/// Parses the target type of an `impl`/`trait` header starting at `i`:
/// `impl Foo {` → `Foo`, `impl<T> fmt::Display for Bar<T> {` → `Bar`,
/// `trait Mapper {` → `Mapper`.
fn impl_target(toks: &[Token], i: usize) -> Option<String> {
    let mut j = i + 1;
    // Skip the generic parameter list right after the keyword.
    if toks.get(j).is_some_and(|t| punct(t, '<')) {
        let mut depth = 0i32;
        while j < toks.len() {
            if punct(&toks[j], '<') {
                depth += 1;
            } else if punct(&toks[j], '>') && !(j > 0 && punct(&toks[j - 1], '-')) {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    // Collect idents up to `{` / `where` / `;`; `for` splits trait
    // from implementing type.
    let mut before_for: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while j < toks.len() && !punct(&toks[j], '{') && !punct(&toks[j], ';') {
        match ident(&toks[j]) {
            Some("where") => break,
            Some("for") => saw_for = true,
            Some("dyn") | Some("mut") | Some("const") => {}
            Some(w) => {
                // Path segments: keep overwriting so `fmt::Display`
                // ends on `Display`; the last ident before `for` (or
                // `{`) is the name we want — but prefer the FIRST
                // ident after `for` (the base type, before generics).
                if saw_for {
                    if after_for.is_none() {
                        after_for = Some(w.to_string());
                    }
                } else if before_for.is_none() || !saw_for {
                    before_for = Some(w.to_string());
                }
            }
            None => {
                // Skip generic argument lists on the type itself.
                if punct(&toks[j], '<') {
                    let mut depth = 0i32;
                    while j < toks.len() {
                        if punct(&toks[j], '<') {
                            depth += 1;
                        } else if punct(&toks[j], '>') && !(j > 0 && punct(&toks[j - 1], '-')) {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                }
            }
        }
        j += 1;
    }
    after_for.or(before_for)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(src: &str) -> FileFacts {
        extract("crates/sim/src/fake.rs", src)
    }

    #[test]
    fn module_paths_follow_workspace_layout() {
        assert_eq!(module_path("crates/sim/src/router.rs"), vec!["router"]);
        assert_eq!(
            module_path("crates/bench/benches/sim_perf.rs"),
            vec!["benches", "sim_perf"]
        );
        assert_eq!(module_path("src/bin/azul.rs"), vec!["bin", "azul"]);
        assert_eq!(module_path("tests/determinism.rs"), vec!["determinism"]);
        assert!(module_path("crates/sim/src/lib.rs").is_empty());
    }

    #[test]
    fn functions_get_qualified_names() {
        let f = facts(
            r#"
pub fn free_fn() {}
struct Router;
impl Router {
    pub fn new() -> Self { Router }
    fn tick(&mut self) {}
}
impl std::fmt::Display for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
}
mod inner {
    pub fn helper() {}
}
"#,
        );
        let names: Vec<&str> = f.fns.iter().map(|f| f.qualified.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "sim::fake::free_fn",
                "sim::fake::Router::new",
                "sim::fake::Router::tick",
                "sim::fake::Router::fmt",
                "sim::fake::inner::helper",
            ]
        );
    }

    #[test]
    fn calls_record_method_and_qualifier_shape() {
        let f = facts(
            r#"
fn caller() {
    helper();
    recv.method_call(1);
    Router::new(3);
    crate::profile::scope();
    generic::<u32>(1);
}
"#,
        );
        let c = &f.fns[0].calls;
        let shapes: Vec<(String, bool, Vec<String>)> = c
            .iter()
            .map(|c| (c.name.clone(), c.method, c.qualifier.clone()))
            .collect();
        assert_eq!(
            shapes,
            vec![
                ("helper".into(), false, vec![]),
                ("method_call".into(), true, vec![]),
                ("new".into(), false, vec!["Router".into()]),
                (
                    "scope".into(),
                    false,
                    vec!["crate".into(), "profile".into()]
                ),
                ("generic".into(), false, vec![]),
            ]
        );
    }

    #[test]
    fn sink_facts_cover_the_catalogue() {
        let f = facts(
            r#"
fn sinky(m: &std::collections::HashMap<u32, u32>) {
    let v: Vec<u32> = Vec::with_capacity(4);
    let b = Box::new(1);
    let s = format!("x");
    let c: Vec<u32> = m.keys().copied().collect();
    buf.push(1);
    guard.lock();
    opt.unwrap();
    res.expect("msg");
    panic!("boom");
    let t = std::time::Instant::now();
}
"#,
        );
        let kinds: Vec<SinkKind> = f.fns[0].sinks.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&SinkKind::AllocConstruct));
        assert!(kinds.contains(&SinkKind::AllocGrow));
        assert!(kinds.contains(&SinkKind::Lock));
        assert!(kinds.contains(&SinkKind::Unwrap));
        assert!(kinds.contains(&SinkKind::PanicMacro));
        assert!(kinds.contains(&SinkKind::WallClock));
        assert!(kinds.contains(&SinkKind::HashIter));
    }

    #[test]
    fn test_functions_are_marked() {
        let f = facts(
            r#"
fn prod() {}
#[test]
fn attr_test() {}
#[cfg(test)]
mod tests {
    fn helper_in_test_mod() {}
    #[test]
    fn the_test() {}
}
"#,
        );
        let flags: Vec<(String, bool)> =
            f.fns.iter().map(|f| (f.name.clone(), f.is_test)).collect();
        assert_eq!(
            flags,
            vec![
                ("prod".into(), false),
                ("attr_test".into(), true),
                ("helper_in_test_mod".into(), true),
                ("the_test".into(), true),
            ]
        );
    }

    #[test]
    fn orphan_sinks_land_outside_functions() {
        let f = facts("use std::time::Instant;\nfn fine() {}\n");
        assert_eq!(f.orphan_sinks.len(), 1);
        assert_eq!(f.orphan_sinks[0].kind, SinkKind::WallClock);
        assert!(f.fns[0].sinks.is_empty());
    }

    #[test]
    fn impl_in_type_position_does_not_open_an_impl_block() {
        let f = facts(
            r#"
fn takes(x: impl Iterator<Item = u32>) -> impl Iterator<Item = u32> { x }
struct S;
impl S {
    fn inside(&self) {}
}
"#,
        );
        let names: Vec<&str> = f.fns.iter().map(|f| f.qualified.as_str()).collect();
        assert_eq!(names, vec!["sim::fake::takes", "sim::fake::S::inside"]);
    }
}
