//! The assignment of operands to tiles.

use crate::grid::{TileGrid, TileId};
use azul_sparse::Csr;

/// A complete operand placement for one matrix workload.
///
/// * `nnz_tile[p]` is the tile holding the `p`-th stored nonzero of the
///   matrix (in row-major CSR order, i.e. aligned with
///   [`Csr::iter`](azul_sparse::Csr::iter));
/// * `vec_tile[i]` is the *home tile* of index `i`: it stores element `i`
///   of every dense vector (`x`, `r`, `p`, `z`, `b`, …), receives the
///   reductions for row `i`, and performs the variable solve for row `i`
///   in SpTRSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    grid: TileGrid,
    nnz_tile: Vec<TileId>,
    vec_tile: Vec<TileId>,
}

impl Placement {
    /// Builds a placement from explicit assignments.
    ///
    /// # Panics
    ///
    /// Panics if any tile id is out of range for the grid.
    pub fn new(grid: TileGrid, nnz_tile: Vec<TileId>, vec_tile: Vec<TileId>) -> Self {
        let p = grid.num_tiles() as u32;
        assert!(
            nnz_tile.iter().all(|&t| t < p),
            "nonzero tile id out of range"
        );
        assert!(
            vec_tile.iter().all(|&t| t < p),
            "vector tile id out of range"
        );
        Placement {
            grid,
            nnz_tile,
            vec_tile,
        }
    }

    /// The tile grid this placement targets.
    pub fn grid(&self) -> TileGrid {
        self.grid
    }

    /// Tile of the `p`-th stored nonzero (CSR row-major order).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn nnz_tile(&self, p: usize) -> TileId {
        self.nnz_tile[p]
    }

    /// All nonzero assignments.
    pub fn nnz_tiles(&self) -> &[TileId] {
        &self.nnz_tile
    }

    /// Home tile of vector index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn vec_tile(&self, i: usize) -> TileId {
        self.vec_tile[i]
    }

    /// All vector-element assignments.
    pub fn vec_tiles(&self) -> &[TileId] {
        &self.vec_tile
    }

    /// Number of matrix nonzeros placed.
    pub fn num_nnz(&self) -> usize {
        self.nnz_tile.len()
    }

    /// Vector dimension.
    pub fn num_rows(&self) -> usize {
        self.vec_tile.len()
    }

    /// Number of nonzeros stored on each tile (data-balance view;
    /// constraint (1) of Sec. IV-B).
    pub fn nnz_per_tile(&self) -> Vec<usize> {
        let mut c = vec![0usize; self.grid.num_tiles()];
        for &t in &self.nnz_tile {
            c[t as usize] += 1;
        }
        c
    }

    /// Max/mean nonzero load ratio across tiles (1.0 = perfectly
    /// balanced).
    pub fn nnz_imbalance(&self) -> f64 {
        let c = self.nnz_per_tile();
        let max = *c.iter().max().unwrap_or(&0) as f64;
        let mean = self.nnz_tile.len() as f64 / self.grid.num_tiles() as f64;
        if mean == 0.0 {
            0.0
        } else {
            max / mean
        }
    }

    /// The distinct tiles holding nonzeros of each column of `a`, sorted.
    ///
    /// This is the destination set of the column multicast (SendV); its
    /// size relates directly to the hypergraph column-net connectivity.
    ///
    /// # Panics
    ///
    /// Panics if `a`'s nonzero count differs from the placement.
    pub fn column_tile_sets(&self, a: &Csr) -> Vec<Vec<TileId>> {
        assert_eq!(a.nnz(), self.nnz_tile.len(), "matrix/placement mismatch");
        let mut sets: Vec<Vec<TileId>> = vec![Vec::new(); a.cols()];
        for (p, (_, c, _)) in a.iter().enumerate() {
            sets[c].push(self.nnz_tile[p]);
        }
        for s in &mut sets {
            s.sort_unstable();
            s.dedup();
        }
        sets
    }

    /// The distinct tiles holding nonzeros of each row of `a`, sorted
    /// (the source set of the row reduction).
    ///
    /// # Panics
    ///
    /// Panics if `a`'s nonzero count differs from the placement.
    pub fn row_tile_sets(&self, a: &Csr) -> Vec<Vec<TileId>> {
        assert_eq!(a.nnz(), self.nnz_tile.len(), "matrix/placement mismatch");
        let mut sets: Vec<Vec<TileId>> = vec![Vec::new(); a.rows()];
        for (p, (r, _, _)) in a.iter().enumerate() {
            sets[r].push(self.nnz_tile[p]);
        }
        for s in &mut sets {
            s.sort_unstable();
            s.dedup();
        }
        sets
    }

    /// Per-tile SRAM usage estimate in bytes: `(data, accumulator)` for
    /// each tile.
    ///
    /// Data SRAM holds the matrix nonzeros (96 bits each: 64-bit value +
    /// 32-bit metadata, Table III) plus this tile's elements of the dense
    /// vectors (`vectors` of them, 8 bytes each — PCG keeps x, r, p, z, b
    /// and a scratch vector). Accumulator SRAM holds one 96-bit slot per
    /// distinct row this tile contributes to (partial sums / reduction
    /// combines).
    ///
    /// # Panics
    ///
    /// Panics if `a`'s nonzero count differs from the placement.
    pub fn sram_usage(&self, a: &Csr, vectors: usize) -> Vec<(usize, usize)> {
        assert_eq!(a.nnz(), self.nnz_tile.len(), "matrix/placement mismatch");
        let p = self.grid.num_tiles();
        let mut data = vec![0usize; p];
        let mut rows_per_tile: Vec<std::collections::HashSet<usize>> =
            vec![std::collections::HashSet::new(); p];
        for (k, (r, _, _)) in a.iter().enumerate() {
            let t = self.nnz_tile[k] as usize;
            data[t] += 12; // 96-bit nonzero
            rows_per_tile[t].insert(r);
        }
        for &t in &self.vec_tile {
            data[t as usize] += 8 * vectors;
        }
        data.iter()
            .zip(&rows_per_tile)
            .map(|(&d, rows)| (d, rows.len() * 12))
            .collect()
    }

    /// Restricts this placement to a sub-pattern of `a` given by `keep`
    /// (e.g. the lower triangle for SpTRSV), returning nonzero tiles
    /// aligned with the filtered matrix's CSR order.
    ///
    /// # Panics
    ///
    /// Panics if `a`'s nonzero count differs from the placement.
    pub fn restrict(&self, a: &Csr, mut keep: impl FnMut(usize, usize) -> bool) -> Vec<TileId> {
        assert_eq!(a.nnz(), self.nnz_tile.len(), "matrix/placement mismatch");
        let mut out = Vec::new();
        for (p, (r, c, _)) in a.iter().enumerate() {
            if keep(r, c) {
                out.push(self.nnz_tile[p]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use azul_sparse::Coo;

    fn sample() -> (Csr, Placement) {
        // 3x3 with 5 nnz; 2x2 grid.
        let a = Coo::from_triplets(
            3,
            3,
            [
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap()
        .to_csr();
        let g = TileGrid::new(2, 2);
        let p = Placement::new(g, vec![0, 1, 2, 3, 0], vec![0, 2, 3]);
        (a, p)
    }

    #[test]
    fn accessors() {
        let (_, p) = sample();
        assert_eq!(p.num_nnz(), 5);
        assert_eq!(p.num_rows(), 3);
        assert_eq!(p.nnz_tile(1), 1);
        assert_eq!(p.vec_tile(2), 3);
    }

    #[test]
    fn column_sets_dedup_tiles() {
        let (a, p) = sample();
        let cols = p.column_tile_sets(&a);
        // col 0 has nnz at positions 0 (tile 0) and 3 (tile 3).
        assert_eq!(cols[0], vec![0, 3]);
        // col 2 has nnz at positions 1 (tile 1) and 4 (tile 0).
        assert_eq!(cols[2], vec![0, 1]);
        assert_eq!(cols[1], vec![2]);
    }

    #[test]
    fn row_sets() {
        let (a, p) = sample();
        let rows = p.row_tile_sets(&a);
        assert_eq!(rows[0], vec![0, 1]);
        assert_eq!(rows[1], vec![2]);
        assert_eq!(rows[2], vec![0, 3]);
    }

    #[test]
    fn restrict_to_lower_triangle() {
        let (a, p) = sample();
        let lower_tiles = p.restrict(&a, |r, c| c <= r);
        // lower entries in CSR order: (0,0)->0, (1,1)->2, (2,0)->3, (2,2)->0
        assert_eq!(lower_tiles, vec![0, 2, 3, 0]);
    }

    #[test]
    fn imbalance_of_uniform_placement_is_low() {
        let g = TileGrid::new(2, 2);
        let p = Placement::new(g, vec![0, 1, 2, 3, 0, 1, 2, 3], vec![0, 1]);
        assert!((p.nnz_imbalance() - 1.0).abs() < 1e-12);
        assert_eq!(p.nnz_per_tile(), vec![2, 2, 2, 2]);
    }

    #[test]
    fn sram_usage_accounts_nonzeros_vectors_and_rows() {
        let (a, p) = sample();
        let usage = p.sram_usage(&a, 2);
        // Tile 0 holds nnz #0 (row 0) and #4 (row 2): 2*12 data bytes,
        // 2 distinct rows -> 24 accumulator bytes; plus vec elem 0 homed
        // there: 2 vectors * 8 bytes.
        assert_eq!(usage[0], (2 * 12 + 16, 24));
        // Total data bytes = nnz*12 + n*vectors*8.
        let total_data: usize = usage.iter().map(|&(d, _)| d).sum();
        assert_eq!(total_data, 5 * 12 + 3 * 2 * 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_tile_id_rejected() {
        let g = TileGrid::new(2, 2);
        Placement::new(g, vec![7], vec![]);
    }
}
