//! 2-D torus tile-grid geometry.

/// A tile identifier: the linear index `y * width + x`.
pub type TileId = u32;

/// A rectangular grid of tiles connected as a 2-D torus (Table III's
/// topology; Fig. 19), or optionally as a plain mesh (no wraparound
/// links) for topology ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileGrid {
    width: usize,
    height: usize,
    wrap: bool,
}

impl TileGrid {
    /// Creates a `width x height` torus.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        TileGrid {
            width,
            height,
            wrap: true,
        }
    }

    /// A square `side x side` torus (the paper's configurations are all
    /// square: 64x64, 128x128, 256x256).
    pub fn square(side: usize) -> Self {
        TileGrid::new(side, side)
    }

    /// Creates a `width x height` *mesh*: same tiles and routers but no
    /// wraparound links, halving the bisection width. Used to quantify how
    /// much the paper's torus topology buys (see the `topology_study`
    /// example).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn mesh(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        TileGrid {
            width,
            height,
            wrap: false,
        }
    }

    /// Whether wraparound (torus) links exist.
    pub fn is_torus(&self) -> bool {
        self.wrap
    }

    /// Grid width (x extent).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height (y extent).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.width * self.height
    }

    /// The `(x, y)` coordinate of a tile id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn coord(&self, id: TileId) -> (usize, usize) {
        let id = id as usize;
        assert!(id < self.num_tiles(), "tile id out of range");
        (id % self.width, id / self.width)
    }

    /// The tile id at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    pub fn id(&self, x: usize, y: usize) -> TileId {
        assert!(x < self.width && y < self.height, "coordinate out of range");
        (y * self.width + x) as TileId
    }

    /// Signed shortest x-offset from `a` to `b` on the torus
    /// (`-w/2 < dx <= w/2`).
    pub fn dx(&self, a: TileId, b: TileId) -> isize {
        let (ax, _) = self.coord(a);
        let (bx, _) = self.coord(b);
        delta(ax, bx, self.width, self.wrap)
    }

    /// Signed shortest y-offset from `a` to `b` on the torus.
    pub fn dy(&self, a: TileId, b: TileId) -> isize {
        let (_, ay) = self.coord(a);
        let (_, by) = self.coord(b);
        delta(ay, by, self.height, self.wrap)
    }

    /// Torus (Manhattan) hop distance between two tiles.
    pub fn distance(&self, a: TileId, b: TileId) -> usize {
        self.dx(a, b).unsigned_abs() + self.dy(a, b).unsigned_abs()
    }

    /// The neighbor of `t` one hop in direction `dir`.
    pub fn step(&self, t: TileId, dir: Direction) -> TileId {
        let (x, y) = self.coord(t);
        let (nx, ny) = match dir {
            Direction::East => ((x + 1) % self.width, y),
            Direction::West => ((x + self.width - 1) % self.width, y),
            Direction::North => (x, (y + self.height - 1) % self.height),
            Direction::South => (x, (y + 1) % self.height),
        };
        self.id(nx, ny)
    }

    /// The four neighbors of a tile (E, W, N, S order).
    pub fn neighbors(&self, t: TileId) -> [TileId; 4] {
        [
            self.step(t, Direction::East),
            self.step(t, Direction::West),
            self.step(t, Direction::North),
            self.step(t, Direction::South),
        ]
    }

    /// The tiles along the XY (dimension-order) route from `a` to `b`,
    /// excluding `a`, including `b`. Takes the shortest wrap-around
    /// direction in each dimension.
    pub fn xy_route(&self, a: TileId, b: TileId) -> Vec<TileId> {
        let mut path = Vec::new();
        let mut cur = a;
        let dx = self.dx(a, b);
        let step_x = if dx >= 0 {
            Direction::East
        } else {
            Direction::West
        };
        for _ in 0..dx.unsigned_abs() {
            cur = self.step(cur, step_x);
            path.push(cur);
        }
        let dy = self.dy(a, b);
        let step_y = if dy >= 0 {
            Direction::South
        } else {
            Direction::North
        };
        for _ in 0..dy.unsigned_abs() {
            cur = self.step(cur, step_y);
            path.push(cur);
        }
        path
    }

    /// NoC bisection width in links: a 2-D torus of width `w` has `2 * 2 * h`
    /// links crossing a vertical cut (two rings per row, each contributing
    /// two crossing links); a mesh has half that.
    pub fn bisection_links(&self) -> usize {
        let rings = self.height.min(self.width);
        if self.wrap {
            4 * rings
        } else {
            2 * rings
        }
    }
}

/// Shortest signed offset from `a` to `b`: modulo `n` on a torus ring,
/// plain difference on a mesh.
fn delta(a: usize, b: usize, n: usize, wrap: bool) -> isize {
    if !wrap {
        return b as isize - a as isize;
    }
    let fwd = (b + n - a) % n; // steps in + direction
    if fwd <= n / 2 {
        fwd as isize
    } else {
        fwd as isize - n as isize
    }
}

/// A hop direction on the torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// +x.
    East,
    /// -x.
    West,
    /// -y.
    North,
    /// +y.
    South,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let g = TileGrid::new(4, 3);
        assert_eq!(g.num_tiles(), 12);
        for id in 0..12u32 {
            let (x, y) = g.coord(id);
            assert_eq!(g.id(x, y), id);
        }
    }

    #[test]
    fn torus_distance_wraps() {
        let g = TileGrid::square(8);
        let a = g.id(0, 0);
        let b = g.id(7, 7);
        // Wrap-around: 1 hop in each dimension.
        assert_eq!(g.distance(a, b), 2);
        let c = g.id(4, 4);
        assert_eq!(g.distance(a, c), 8);
    }

    #[test]
    fn torus_delta_prefers_shortest() {
        assert_eq!(delta(0, 3, 8, true), 3);
        assert_eq!(delta(0, 5, 8, true), -3);
        assert_eq!(delta(0, 4, 8, true), 4); // tie goes forward
        assert_eq!(delta(2, 2, 8, true), 0);
    }

    #[test]
    fn mesh_has_no_wraparound() {
        let g = TileGrid::mesh(8, 8);
        assert!(!g.is_torus());
        let a = g.id(0, 0);
        let b = g.id(7, 7);
        // No wrap: full Manhattan distance.
        assert_eq!(g.distance(a, b), 14);
        // Routes stay inside the grid.
        let route = g.xy_route(a, b);
        assert_eq!(*route.last().unwrap(), b);
        assert_eq!(route.len(), 14);
    }

    #[test]
    fn mesh_bisection_is_half_of_torus() {
        assert_eq!(TileGrid::square(8).bisection_links(), 32);
        assert_eq!(TileGrid::mesh(8, 8).bisection_links(), 16);
    }

    #[test]
    fn steps_are_inverse() {
        let g = TileGrid::new(5, 7);
        for t in 0..g.num_tiles() as u32 {
            assert_eq!(g.step(g.step(t, Direction::East), Direction::West), t);
            assert_eq!(g.step(g.step(t, Direction::North), Direction::South), t);
        }
    }

    #[test]
    fn xy_route_reaches_destination() {
        let g = TileGrid::square(6);
        let a = g.id(1, 1);
        let b = g.id(4, 5);
        let route = g.xy_route(a, b);
        assert_eq!(*route.last().unwrap(), b);
        assert_eq!(route.len(), g.distance(a, b));
        // Consecutive tiles are neighbors.
        let mut prev = a;
        for &t in &route {
            assert!(g.neighbors(prev).contains(&t));
            prev = t;
        }
    }

    #[test]
    fn xy_route_to_self_is_empty() {
        let g = TileGrid::square(4);
        assert!(g.xy_route(5, 5).is_empty());
    }

    #[test]
    fn neighbors_are_distinct_on_big_grid() {
        let g = TileGrid::square(8);
        let n = g.neighbors(g.id(3, 3));
        let set: std::collections::HashSet<_> = n.iter().collect();
        assert_eq!(set.len(), 4);
    }
}
