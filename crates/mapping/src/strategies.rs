//! The four mapping strategies compared in the paper (Sec. III, VI-C).

use crate::grid::{TileGrid, TileId};
use crate::placement::Placement;
use crate::workload::{build_pcg_hypergraph, DEFAULT_QUANTILES, DEFAULT_ROW_EDGE_WEIGHT};
use azul_hypergraph::PartitionConfig;
use azul_sparse::Csr;
use azul_telemetry::span;

/// A data-mapping strategy: assigns every nonzero and vector element of a
/// workload to a tile.
pub trait Mapper {
    /// Strategy name for reports.
    fn name(&self) -> &'static str;

    /// Maps matrix `a`'s operands onto `grid`.
    fn map(&self, a: &Csr, grid: TileGrid) -> Placement;
}

/// Dalorex's mapping: nonzero `i` (in row-major enumeration) goes to tile
/// `i mod P`; vector element `i` likewise. Position-based and
/// sparsity-pattern agnostic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRobinMapper;

impl Mapper for RoundRobinMapper {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn map(&self, a: &Csr, grid: TileGrid) -> Placement {
        let p = grid.num_tiles();
        let nnz_tile: Vec<TileId> = (0..a.nnz()).map(|i| (i % p) as TileId).collect();
        let vec_tile: Vec<TileId> = (0..a.rows()).map(|i| (i % p) as TileId).collect();
        Placement::new(grid, nnz_tile, vec_tile)
    }
}

/// Tascade's (and MPI systems') mapping: contiguous blocks of
/// `ceil(nnz/P)` nonzeros per tile; vector elements in contiguous blocks
/// of `ceil(n/P)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockMapper;

impl Mapper for BlockMapper {
    fn name(&self) -> &'static str {
        "block"
    }

    fn map(&self, a: &Csr, grid: TileGrid) -> Placement {
        let p = grid.num_tiles();
        let nnz_chunk = a.nnz().div_ceil(p).max(1);
        let vec_chunk = a.rows().div_ceil(p).max(1);
        let nnz_tile: Vec<TileId> = (0..a.nnz()).map(|i| (i / nnz_chunk) as TileId).collect();
        let vec_tile: Vec<TileId> = (0..a.rows()).map(|i| (i / vec_chunk) as TileId).collect();
        Placement::new(grid, nnz_tile, vec_tile)
    }
}

/// SparseP's coordinate-based 2-D chunking (Sec. VI-C): `sqrt(P)` column
/// chunks of equal nonzero count, each subdivided into `sqrt(P)` row
/// chunks of equal nonzero count. Vector element `i` lives with the chunk
/// containing the diagonal coordinate `(i, i)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SparsePMapper;

impl Mapper for SparsePMapper {
    fn name(&self) -> &'static str {
        "sparsep"
    }

    fn map(&self, a: &Csr, grid: TileGrid) -> Placement {
        let (pc, pr) = factor_near_square(grid.num_tiles());
        let n = a.rows();
        // Column chunk boundaries: equal nonzeros per column chunk.
        let mut col_nnz = vec![0usize; n];
        for (_, c, _) in a.iter() {
            col_nnz[c] += 1;
        }
        let col_chunk_of = balanced_chunks(&col_nnz, pc);

        // Within each column chunk, row chunk boundaries of equal nnz.
        let mut row_nnz_per_chunk = vec![vec![0usize; n]; pc];
        for (r, c, _) in a.iter() {
            row_nnz_per_chunk[col_chunk_of[c]][r] += 1;
        }
        let row_chunk_of: Vec<Vec<usize>> = row_nnz_per_chunk
            .iter()
            .map(|counts| balanced_chunks(counts, pr))
            .collect();

        let nnz_tile: Vec<TileId> = a
            .iter()
            .map(|(r, c, _)| {
                let cc = col_chunk_of[c];
                let rc = row_chunk_of[cc][r];
                (cc * pr + rc) as TileId
            })
            .collect();
        let vec_tile: Vec<TileId> = (0..n)
            .map(|i| {
                let cc = col_chunk_of[i];
                let rc = row_chunk_of[cc][i];
                (cc * pr + rc) as TileId
            })
            .collect();
        Placement::new(grid, nnz_tile, vec_tile)
    }
}

/// Azul's hypergraph-partitioning mapper (Sec. IV): column nets for
/// multicasts, weighted row nets for reductions, and q-quantile
/// time-balancing constraints, partitioned with the multilevel partitioner.
#[derive(Debug, Clone, PartialEq)]
pub struct AzulMapper {
    /// Weight of row (reduction) nets relative to column nets (default 2).
    pub row_edge_weight: u64,
    /// Time-balance quantiles (default 5; 0 disables, for ablations).
    pub quantiles: usize,
    /// Allowed imbalance per constraint.
    pub epsilon: f64,
    /// Partitioner seed.
    pub seed: u64,
    /// Use the fast (lower-quality) partitioner preset — the analog of
    /// PaToH's `speed` preset discussed in Sec. VI-D.
    pub fast: bool,
}

impl Default for AzulMapper {
    fn default() -> Self {
        AzulMapper {
            row_edge_weight: DEFAULT_ROW_EDGE_WEIGHT,
            quantiles: DEFAULT_QUANTILES,
            epsilon: 0.10,
            seed: 0xA201,
            fast: false,
        }
    }
}

impl AzulMapper {
    /// An Azul mapper using the fast partitioner preset (lower quality,
    /// much cheaper — Sec. VI-D's speed/quality tradeoff).
    pub fn fast_default() -> Self {
        AzulMapper {
            fast: true,
            ..Default::default()
        }
    }

    /// An Azul mapper without time balancing (Fig. 17's "Nonzero
    /// Balancing" baseline).
    pub fn without_time_balancing() -> Self {
        AzulMapper {
            quantiles: 0,
            ..Default::default()
        }
    }

    /// An Azul mapper with equal row/column net weights (ablation of the
    /// reduction-cost weighting of Sec. IV-C).
    pub fn with_uniform_edge_weights() -> Self {
        AzulMapper {
            row_edge_weight: 1,
            ..Default::default()
        }
    }
}

impl Mapper for AzulMapper {
    fn name(&self) -> &'static str {
        "azul"
    }

    fn map(&self, a: &Csr, grid: TileGrid) -> Placement {
        let w = {
            let mut s = span::span("mapping/hypergraph");
            let w = build_pcg_hypergraph(a, self.row_edge_weight, self.quantiles);
            s.annotate("num_vertices", w.hg.num_vertices() as u64);
            s.annotate("num_nets", w.hg.num_nets() as u64);
            w
        };
        let mut cfg = if self.fast {
            PartitionConfig::fast(grid.num_tiles())
        } else {
            PartitionConfig::k_way(grid.num_tiles())
        };
        cfg.epsilon = self.epsilon;
        cfg.seed = self.seed;
        let part = {
            let _s = span::span("mapping/partition");
            w.hg.partition(&cfg)
        };
        let nnz_tile: Vec<TileId> = (0..w.num_nnz)
            .map(|p| part.part_of(w.nnz_vertex(p)) as TileId)
            .collect();
        let vec_tile: Vec<TileId> = (0..w.num_rows)
            .map(|i| part.part_of(w.vec_vertex(i)) as TileId)
            .collect();
        Placement::new(grid, nnz_tile, vec_tile)
    }
}

/// Splits `p` into factors `(a, b)` with `a * b == p`, as square as
/// possible (`a >= b`).
fn factor_near_square(p: usize) -> (usize, usize) {
    let mut b = (p as f64).sqrt() as usize;
    while b > 1 && !p.is_multiple_of(b) {
        b -= 1;
    }
    (p / b.max(1), b.max(1))
}

/// Assigns each index to one of `k` chunks so chunks are contiguous and
/// have near-equal total `weights`.
fn balanced_chunks(weights: &[usize], k: usize) -> Vec<usize> {
    let total: usize = weights.iter().sum();
    let target = total.div_ceil(k.max(1)).max(1);
    let mut chunk = 0usize;
    let mut acc = 0usize;
    weights
        .iter()
        .map(|&w| {
            if acc >= target && chunk + 1 < k {
                chunk += 1;
                acc = 0;
            }
            acc += w;
            chunk
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use azul_sparse::generate;

    fn grid4() -> TileGrid {
        TileGrid::new(2, 2)
    }

    #[test]
    fn round_robin_cycles_tiles() {
        let a = generate::grid_laplacian_2d(4, 4);
        let p = RoundRobinMapper.map(&a, grid4());
        for (i, &t) in p.nnz_tiles().iter().enumerate() {
            assert_eq!(t as usize, i % 4);
        }
        assert!((p.nnz_imbalance() - 1.0).abs() < 0.05);
    }

    #[test]
    fn block_mapper_is_contiguous() {
        let a = generate::grid_laplacian_2d(4, 4);
        let p = BlockMapper.map(&a, grid4());
        let tiles = p.nnz_tiles();
        for w in tiles.windows(2) {
            assert!(w[1] >= w[0], "blocks must be non-decreasing");
        }
        // All four tiles used.
        let used: std::collections::HashSet<_> = tiles.iter().collect();
        assert_eq!(used.len(), 4);
    }

    #[test]
    fn sparsep_balances_nonzeros() {
        let a = generate::fem_mesh_3d(200, 6, 5);
        let p = SparsePMapper.map(&a, TileGrid::new(4, 4));
        assert!(p.nnz_imbalance() < 2.0, "imbalance {}", p.nnz_imbalance());
        let used: std::collections::HashSet<_> = p.nnz_tiles().iter().collect();
        assert!(used.len() >= 12, "most tiles used, got {}", used.len());
    }

    #[test]
    fn azul_mapper_balances_and_localizes() {
        let a = generate::grid_laplacian_2d(12, 12);
        let grid = TileGrid::new(2, 2);
        let p = AzulMapper::default().map(&a, grid);
        assert!(p.nnz_imbalance() < 1.6, "imbalance {}", p.nnz_imbalance());
        // Column locality: most columns live on one tile.
        let sets = p.column_tile_sets(&a);
        // Time-balance constraints trade some locality away, but at least
        // a third of columns should still be tile-local (round-robin gets
        // essentially none).
        let single = sets.iter().filter(|s| s.len() == 1).count();
        assert!(
            single * 3 > sets.len(),
            "expected >=1/3 single-tile columns, got {single}/{}",
            sets.len()
        );
    }

    #[test]
    fn azul_beats_round_robin_on_column_locality() {
        let a = generate::fem_mesh_3d(150, 5, 9);
        let grid = TileGrid::new(4, 4);
        let rr = RoundRobinMapper.map(&a, grid);
        let az = AzulMapper::default().map(&a, grid);
        let span = |p: &Placement| -> usize { p.column_tile_sets(&a).iter().map(Vec::len).sum() };
        assert!(
            span(&az) < span(&rr) / 2,
            "azul span {} vs rr span {}",
            span(&az),
            span(&rr)
        );
    }

    #[test]
    fn mapper_names() {
        assert_eq!(RoundRobinMapper.name(), "round-robin");
        assert_eq!(BlockMapper.name(), "block");
        assert_eq!(SparsePMapper.name(), "sparsep");
        assert_eq!(AzulMapper::default().name(), "azul");
    }

    #[test]
    fn factorization_helper() {
        assert_eq!(factor_near_square(16), (4, 4));
        assert_eq!(factor_near_square(12), (4, 3));
        assert_eq!(factor_near_square(7), (7, 1));
        assert_eq!(factor_near_square(1), (1, 1));
    }

    #[test]
    fn balanced_chunks_near_equal() {
        let w = vec![1usize; 100];
        let c = balanced_chunks(&w, 4);
        let mut sizes = vec![0usize; 4];
        for &ch in &c {
            sizes[ch] += 1;
        }
        assert!(sizes.iter().all(|&s| (20..=30).contains(&s)), "{sizes:?}");
    }

    #[test]
    fn ablation_constructors() {
        assert_eq!(AzulMapper::without_time_balancing().quantiles, 0);
        assert_eq!(AzulMapper::with_uniform_edge_weights().row_edge_weight, 1);
    }
}
