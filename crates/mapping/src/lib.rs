//! Data-mapping algorithms for Azul (Sec. IV).
//!
//! A *mapping* decides which tile holds each matrix nonzero and each vector
//! element. The mapping alone determines all inter-tile traffic (Sec. IV-A),
//! so this crate is where the paper's headline software contribution lives:
//!
//! * [`grid::TileGrid`] — 2-D torus geometry;
//! * [`placement::Placement`] — the tile assignment of every operand;
//! * [`strategies`] — the four mappers compared in the evaluation:
//!   Round-Robin (Dalorex), Block (Tascade/MPI), SparseP
//!   (coordinate-based 2-D chunking) and Azul's hypergraph mapping with
//!   row-edge weighting and q-quantile time balancing;
//! * [`tree`] — XY multicast/reduction trees on the torus (Fig. 18);
//! * [`traffic`] — the static traffic model behind Fig. 11 and the
//!   66x/46x/34x traffic-reduction claims of Sec. VI-C.
//!
//! # Example
//!
//! ```
//! use azul_mapping::{grid::TileGrid, strategies::{Mapper, RoundRobinMapper, AzulMapper}};
//! use azul_mapping::traffic::spmv_traffic;
//! use azul_sparse::generate;
//!
//! let a = generate::grid_laplacian_2d(16, 16);
//! let grid = TileGrid::new(4, 4);
//! let rr = RoundRobinMapper.map(&a, grid);
//! let azul = AzulMapper::default().map(&a, grid);
//! let t_rr = spmv_traffic(&a, &rr);
//! let t_azul = spmv_traffic(&a, &azul);
//! assert!(t_azul.messages < t_rr.messages, "hypergraph mapping cuts traffic");
//! ```

#![forbid(unsafe_code)]

pub mod grid;
pub mod placement;
pub mod strategies;
pub mod traffic;
pub mod tree;
pub mod workload;

pub use grid::{TileGrid, TileId};
pub use placement::Placement;
pub use strategies::{AzulMapper, BlockMapper, Mapper, RoundRobinMapper, SparsePMapper};
