//! Multicast and reduction trees on the torus (Sec. IV-D, Fig. 18).
//!
//! Sending a value from one tile to many (or reducing many partials into
//! one) with point-to-point messages wastes links and serializes at the
//! source. Azul's compiler instead builds *communication trees*: the union
//! of dimension-order (X-then-Y) routes from the root to every destination
//! forms a tree in which each link is used exactly once, and intermediate
//! tiles forward (multicast) or combine (reduction) values.

use crate::grid::{TileGrid, TileId};
use std::collections::BTreeMap;

/// A communication tree rooted at one tile, spanning a destination set.
///
/// For a multicast, data flows root → leaves; for a reduction the same
/// tree is used leaves → root, with intermediate tiles combining partials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommTree {
    root: TileId,
    /// Child lists, sorted by parent tile.
    children: BTreeMap<TileId, Vec<TileId>>,
    /// Parent of every non-root tile in the tree.
    parent: BTreeMap<TileId, TileId>,
    /// Destination (participant) tiles, sorted.
    dests: Vec<TileId>,
    /// Total number of links (= total hop count of one traversal).
    links: usize,
}

impl CommTree {
    /// Builds the XY-route tree from `root` to `dests` on `grid`.
    ///
    /// Duplicate destinations and the root itself are tolerated (the root
    /// is dropped from the destination set — it already has the value).
    pub fn build(grid: TileGrid, root: TileId, dests: &[TileId]) -> Self {
        let mut children: BTreeMap<TileId, Vec<TileId>> = BTreeMap::new();
        let mut parent: BTreeMap<TileId, TileId> = BTreeMap::new();
        let mut uniq: Vec<TileId> = dests.iter().copied().filter(|&d| d != root).collect();
        uniq.sort_unstable();
        uniq.dedup();
        let mut links = 0usize;
        for &d in &uniq {
            let mut prev = root;
            for hop in grid.xy_route(root, d) {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(hop) {
                    e.insert(prev);
                    children.entry(prev).or_default().push(hop);
                    links += 1;
                } else {
                    debug_assert_eq!(
                        parent[&hop], prev,
                        "XY routes from one root always agree on parents"
                    );
                }
                prev = hop;
            }
        }
        CommTree {
            root,
            children,
            parent,
            dests: uniq,
            links,
        }
    }

    /// The root tile.
    pub fn root(&self) -> TileId {
        self.root
    }

    /// The destination (participant) tiles, sorted, excluding the root.
    pub fn dests(&self) -> &[TileId] {
        &self.dests
    }

    /// Whether `t` is a destination.
    pub fn is_dest(&self, t: TileId) -> bool {
        self.dests.binary_search(&t).is_ok()
    }

    /// Children of `t` in the tree (empty for leaves and tiles outside the
    /// tree).
    pub fn children_of(&self, t: TileId) -> &[TileId] {
        self.children.get(&t).map_or(&[], Vec::as_slice)
    }

    /// Parent of `t`, or `None` for the root / tiles outside the tree.
    pub fn parent_of(&self, t: TileId) -> Option<TileId> {
        self.parent.get(&t).copied()
    }

    /// Number of tree links; one multicast traverses each exactly once.
    pub fn num_links(&self) -> usize {
        self.links
    }

    /// All tiles that participate in the tree (root, forwarders, leaves).
    pub fn tiles(&self) -> Vec<TileId> {
        let mut v: Vec<TileId> = self.parent.keys().copied().collect();
        v.push(self.root);
        v.sort_unstable();
        v
    }

    /// Iterates over directed links `(parent, child)`.
    pub fn iter_links(&self) -> impl Iterator<Item = (TileId, TileId)> + '_ {
        self.children
            .iter()
            .flat_map(|(&p, cs)| cs.iter().map(move |&c| (p, c)))
    }

    /// For a reduction: the number of inputs each participating tile must
    /// combine before forwarding up (children contributions plus one if
    /// the tile is itself a destination/leaf contributor).
    pub fn reduction_fan_in(&self, t: TileId) -> usize {
        self.children_of(t).len() + usize::from(self.is_dest(t) || t == self.root)
    }
}

/// Total links used by naive point-to-point sends from `root` to `dests`
/// (for comparison against trees, as in Fig. 18).
pub fn point_to_point_hops(grid: TileGrid, root: TileId, dests: &[TileId]) -> usize {
    dests
        .iter()
        .filter(|&&d| d != root)
        .map(|&d| grid.distance(root, d))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_to_single_dest_is_a_path() {
        let g = TileGrid::square(8);
        let t = CommTree::build(g, g.id(3, 3), &[g.id(6, 3)]);
        assert_eq!(t.num_links(), 3);
        assert_eq!(t.dests(), &[g.id(6, 3)]);
        assert_eq!(t.children_of(g.id(3, 3)), &[g.id(4, 3)]);
    }

    #[test]
    fn shared_prefix_links_are_counted_once() {
        // Fig. 18's point: multiple dests to the left share east-west links.
        let g = TileGrid::square(8);
        let root = g.id(3, 3);
        // Dests in the same column x=1, rows 1, 3, 6.
        let dests = [g.id(1, 1), g.id(1, 3), g.id(1, 6)];
        let tree = CommTree::build(g, root, &dests);
        let p2p = point_to_point_hops(g, root, &dests);
        assert!(
            tree.num_links() < p2p,
            "tree {} should beat p2p {}",
            tree.num_links(),
            p2p
        );
        // Tree: 2 links west + 2 up + 2 down (wrap makes row 6 2 hops north
        // of row 3? no: dy(3->6)=3 south or 5 north, so 3 south) => 2+2+3=7.
        assert_eq!(tree.num_links(), 7);
    }

    #[test]
    fn every_dest_is_reachable_from_root() {
        let g = TileGrid::square(6);
        let root = g.id(0, 0);
        let dests: Vec<TileId> = (0..g.num_tiles() as u32).step_by(5).collect();
        let tree = CommTree::build(g, root, &dests);
        for &d in tree.dests() {
            // Walk up parents to the root.
            let mut cur = d;
            let mut steps = 0;
            while cur != root {
                cur = tree.parent_of(cur).expect("parent chain reaches root");
                steps += 1;
                assert!(steps <= g.num_tiles(), "cycle detected");
            }
        }
    }

    #[test]
    fn root_in_dests_is_ignored() {
        let g = TileGrid::square(4);
        let tree = CommTree::build(g, 5, &[5, 5]);
        assert_eq!(tree.num_links(), 0);
        assert!(tree.dests().is_empty());
    }

    #[test]
    fn duplicate_dests_deduped() {
        let g = TileGrid::square(4);
        let tree = CommTree::build(g, 0, &[3, 3, 3]);
        assert_eq!(tree.dests(), &[3]);
    }

    #[test]
    fn reduction_fan_in_counts_children_and_self() {
        let g = TileGrid::square(8);
        let root = g.id(3, 3);
        let dests = [g.id(1, 1), g.id(1, 6), g.id(5, 3)];
        let tree = CommTree::build(g, root, &dests);
        // The branch tile (1,3) forwards for both column dests but is not
        // itself a dest: fan-in = 2 children (north+south), 0 self.
        assert_eq!(tree.reduction_fan_in(g.id(1, 3)), 2);
        // A leaf dest has fan-in 1 (itself).
        assert_eq!(tree.reduction_fan_in(g.id(1, 1)), 1);
        // Root: children + 1 (home's own contribution).
        assert!(tree.reduction_fan_in(root) >= 2);
    }

    #[test]
    fn link_count_matches_iterator() {
        let g = TileGrid::square(6);
        let dests: Vec<TileId> = vec![7, 14, 21, 28, 35];
        let tree = CommTree::build(g, 0, &dests);
        assert_eq!(tree.iter_links().count(), tree.num_links());
        // Tiles = links + 1 (it's a tree).
        assert_eq!(tree.tiles().len(), tree.num_links() + 1);
    }
}
