//! Static NoC traffic model (Fig. 11, Sec. VI-C).
//!
//! Given a placement, the communication of each kernel is fully
//! determined: each column multicast spans the tiles holding that column's
//! nonzeros, and each row reduction spans the tiles holding that row's
//! nonzeros. Messages flow over [`CommTree`]s, so link activations are the
//! tree link counts. This model reproduces the traffic comparisons without
//! running the cycle-level simulator (which counts the same quantities
//! dynamically).

use crate::grid::TileId;
use crate::placement::Placement;
use crate::tree::CommTree;
use azul_sparse::Csr;

/// Aggregate traffic of one kernel invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficReport {
    /// Logical messages: for each communication set spanning `N` tiles,
    /// `N - 1` messages (Sec. IV-B).
    pub messages: u64,
    /// Link activations: total tree-link traversals (Fig. 11's metric).
    pub link_hops: u64,
    /// The heaviest single link's activation count (hotspot measure).
    pub max_link_load: u64,
    /// Per-link activation counts, indexed `tile * 4 + direction`.
    pub per_link: Vec<u64>,
}

impl TrafficReport {
    fn new(num_tiles: usize) -> Self {
        TrafficReport {
            per_link: vec![0; num_tiles * 4],
            ..Default::default()
        }
    }

    fn add_tree(&mut self, placement: &Placement, tree: &CommTree) {
        self.messages += tree.dests().len() as u64;
        self.link_hops += tree.num_links() as u64;
        let grid = placement.grid();
        for (from, to) in tree.iter_links() {
            let dir = link_direction(placement, from, to);
            let idx = from as usize * 4 + dir;
            self.per_link[idx] += 1;
            self.max_link_load = self.max_link_load.max(self.per_link[idx]);
        }
        let _ = grid;
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: &TrafficReport) {
        self.messages += other.messages;
        self.link_hops += other.link_hops;
        if self.per_link.len() == other.per_link.len() {
            for (a, b) in self.per_link.iter_mut().zip(&other.per_link) {
                *a += b;
            }
            self.max_link_load = self.per_link.iter().copied().max().unwrap_or(0);
        }
    }
}

/// Direction index (0..4) of the link from `from` to adjacent tile `to`.
fn link_direction(placement: &Placement, from: TileId, to: TileId) -> usize {
    let g = placement.grid();
    let n = g.neighbors(from);
    n.iter()
        .position(|&t| t == to)
        .expect("tree links connect adjacent tiles")
}

/// Traffic of one SpMV `y = A x` under `placement`.
///
/// Column multicasts send `x_j` from its home to every tile holding a
/// column-`j` nonzero; row reductions send partial sums to `y_i`'s home.
///
/// # Panics
///
/// Panics if `a`'s nonzero count differs from the placement.
pub fn spmv_traffic(a: &Csr, placement: &Placement) -> TrafficReport {
    let grid = placement.grid();
    let mut report = TrafficReport::new(grid.num_tiles());
    for (j, set) in placement.column_tile_sets(a).iter().enumerate() {
        let tree = CommTree::build(grid, placement.vec_tile(j), set);
        report.add_tree(placement, &tree);
    }
    for (i, set) in placement.row_tile_sets(a).iter().enumerate() {
        let tree = CommTree::build(grid, placement.vec_tile(i), set);
        report.add_tree(placement, &tree);
    }
    report
}

/// Traffic of one lower-triangular solve `L x = b` where `L = tril(a)`.
///
/// Solved variables are multicast down their column; row partial sums
/// reduce to the row's home tile (which performs the solve).
///
/// # Panics
///
/// Panics if `a`'s nonzero count differs from the placement.
pub fn sptrsv_traffic(a: &Csr, placement: &Placement) -> TrafficReport {
    let grid = placement.grid();
    let mut report = TrafficReport::new(grid.num_tiles());
    let n = a.rows();
    let mut col_sets: Vec<Vec<TileId>> = vec![Vec::new(); n];
    let mut row_sets: Vec<Vec<TileId>> = vec![Vec::new(); n];
    for (p, (r, c, _)) in a.iter().enumerate() {
        if c < r {
            let t = placement.nnz_tile(p);
            col_sets[c].push(t);
            row_sets[r].push(t);
        }
    }
    for j in 0..n {
        col_sets[j].sort_unstable();
        col_sets[j].dedup();
        let tree = CommTree::build(grid, placement.vec_tile(j), &col_sets[j]);
        report.add_tree(placement, &tree);
        row_sets[j].sort_unstable();
        row_sets[j].dedup();
        let tree = CommTree::build(grid, placement.vec_tile(j), &row_sets[j]);
        report.add_tree(placement, &tree);
    }
    report
}

/// Traffic of one full PCG iteration: one SpMV, two SpTRSVs (with `L` and
/// `L^T`, which have mirrored communication sets), plus the all-reduce
/// trees of the three dot products.
///
/// # Panics
///
/// Panics if `a`'s nonzero count differs from the placement.
pub fn pcg_iteration_traffic(a: &Csr, placement: &Placement) -> TrafficReport {
    let grid = placement.grid();
    let mut report = spmv_traffic(a, placement);
    let tri = sptrsv_traffic(a, placement);
    report.merge(&tri);
    report.merge(&tri); // L and L^T solves have symmetric traffic
                        // Three dot-product all-reduces: every tile holding vector data
                        // contributes one partial to tile 0, then the scalar is broadcast back.
    let mut holders: Vec<TileId> = placement.vec_tiles().to_vec();
    holders.sort_unstable();
    holders.dedup();
    let tree = CommTree::build(grid, 0, &holders);
    for _ in 0..3 {
        let mut t = TrafficReport::new(grid.num_tiles());
        t.add_tree(placement, &tree); // reduce
        t.add_tree(placement, &tree); // broadcast
        report.merge(&t);
    }
    report
}

/// How heavily a traffic pattern loads the torus bisection: the total
/// activations of links crossing the vertical mid-cut, and the implied
/// lower bound on kernel cycles at 1 flit/link/cycle.
///
/// This is the quantity behind the paper's observation that the NoC has
/// "a modest 6 TB/s network bisection bandwidth" against 192 TB/s of
/// SRAM bandwidth: a mapping is NoC-bound when `cycles_lower_bound`
/// exceeds the compute time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BisectionLoad {
    /// Link activations crossing the vertical mid-cut.
    pub crossing_activations: u64,
    /// Number of links in the cut (both wrap and internal rings).
    pub cut_links: usize,
    /// Cycles needed just to push the crossing traffic through the cut.
    pub cycles_lower_bound: u64,
}

/// Computes the bisection load of a traffic report on its grid.
pub fn bisection_load(report: &TrafficReport, placement: &Placement) -> BisectionLoad {
    let grid = placement.grid();
    let w = grid.width();
    // The vertical cut between columns (w/2 - 1, w/2) and the wraparound
    // cut between columns (w-1, 0): each row contributes 2 eastbound and
    // 2 westbound crossing links.
    let cut_a = w / 2;
    let mut crossing = 0u64;
    for t in 0..grid.num_tiles() as u32 {
        let (x, _) = grid.coord(t);
        for dir in 0..4usize {
            let count = report
                .per_link
                .get(t as usize * 4 + dir)
                .copied()
                .unwrap_or(0);
            if count == 0 {
                continue;
            }
            // dir 0 = East, 1 = West (see grid::Direction ordering).
            let crosses = match dir {
                0 => (x + 1) % w == cut_a || (x + 1) % w == 0,
                1 => x == cut_a || x == 0,
                _ => false,
            };
            if crosses {
                crossing += count;
            }
        }
    }
    let cut_links = 4 * grid.height();
    BisectionLoad {
        crossing_activations: crossing,
        cut_links,
        cycles_lower_bound: crossing / cut_links.max(1) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::TileGrid;
    use crate::strategies::{AzulMapper, BlockMapper, Mapper, RoundRobinMapper};
    use azul_sparse::generate;

    #[test]
    fn single_tile_placement_has_zero_traffic() {
        let a = generate::grid_laplacian_2d(4, 4);
        let grid = TileGrid::new(1, 1);
        let p = Placement::new(grid, vec![0; a.nnz()], vec![0; 16]);
        let t = spmv_traffic(&a, &p);
        assert_eq!(t.messages, 0);
        assert_eq!(t.link_hops, 0);
    }

    #[test]
    fn round_robin_traffic_scales_with_nnz() {
        let a = generate::grid_laplacian_2d(8, 8);
        let grid = TileGrid::new(4, 4);
        let p = RoundRobinMapper.map(&a, grid);
        let t = spmv_traffic(&a, &p);
        // Round robin scatters columns across many tiles: messages should
        // be on the order of nnz.
        assert!(t.messages as usize > a.nnz() / 4);
        assert!(t.link_hops >= t.messages, "trees have >= 1 hop per dest");
    }

    #[test]
    fn azul_mapping_reduces_traffic_vs_baselines() {
        let a = generate::fem_mesh_3d(200, 6, 13);
        let grid = TileGrid::new(4, 4);
        let rr = spmv_traffic(&a, &RoundRobinMapper.map(&a, grid));
        let bl = spmv_traffic(&a, &BlockMapper.map(&a, grid));
        let az = spmv_traffic(&a, &AzulMapper::default().map(&a, grid));
        assert!(
            az.link_hops * 3 < rr.link_hops,
            "azul {} vs rr {}",
            az.link_hops,
            rr.link_hops
        );
        assert!(
            az.link_hops < bl.link_hops,
            "azul {} vs block {}",
            az.link_hops,
            bl.link_hops
        );
    }

    #[test]
    fn sptrsv_traffic_only_counts_strict_lower() {
        // Diagonal matrix: no SpTRSV communication at all.
        let a = azul_sparse::Csr::identity(8);
        let grid = TileGrid::new(2, 2);
        let p = RoundRobinMapper.map(&a, grid);
        let t = sptrsv_traffic(&a, &p);
        assert_eq!(t.messages, 0);
    }

    #[test]
    fn pcg_traffic_exceeds_spmv_traffic() {
        let a = generate::grid_laplacian_2d(6, 6);
        let grid = TileGrid::new(2, 2);
        let p = RoundRobinMapper.map(&a, grid);
        let spmv = spmv_traffic(&a, &p);
        let pcg = pcg_iteration_traffic(&a, &p);
        assert!(pcg.messages > spmv.messages);
        assert!(pcg.link_hops > spmv.link_hops);
    }

    #[test]
    fn bisection_load_reflects_mapping_quality() {
        let a = generate::fem_mesh_3d(200, 6, 13);
        let grid = TileGrid::new(4, 4);
        let rr_place = RoundRobinMapper.map(&a, grid);
        let az_place = AzulMapper::default().map(&a, grid);
        let rr = bisection_load(&spmv_traffic(&a, &rr_place), &rr_place);
        let az = bisection_load(&spmv_traffic(&a, &az_place), &az_place);
        assert!(
            az.crossing_activations < rr.crossing_activations,
            "azul {} vs rr {}",
            az.crossing_activations,
            rr.crossing_activations
        );
        assert_eq!(rr.cut_links, 16);
        assert!(rr.cycles_lower_bound >= az.cycles_lower_bound);
    }

    #[test]
    fn bisection_load_zero_for_local_placement() {
        let a = generate::grid_laplacian_2d(4, 4);
        let grid = TileGrid::new(1, 1);
        let p = Placement::new(grid, vec![0; a.nnz()], vec![0; 16]);
        let load = bisection_load(&spmv_traffic(&a, &p), &p);
        assert_eq!(load.crossing_activations, 0);
        assert_eq!(load.cycles_lower_bound, 0);
    }

    #[test]
    fn per_link_totals_match_link_hops() {
        let a = generate::fem_mesh_3d(100, 4, 21);
        let grid = TileGrid::new(4, 4);
        let p = BlockMapper.map(&a, grid);
        let t = spmv_traffic(&a, &p);
        assert_eq!(t.per_link.iter().sum::<u64>(), t.link_hops);
        assert_eq!(t.max_link_load, t.per_link.iter().copied().max().unwrap());
    }
}
