//! Hypergraph construction for the PCG workload (Sec. IV-B, Fig. 16).
//!
//! Every matrix nonzero and every vector element becomes a vertex. Each
//! column `j` contributes a *column net* — `v_j` together with all
//! nonzeros of column `j` (the multicast communication set) — and each row
//! `i` a *row net* — `y_i` together with all nonzeros of row `i` (the
//! reduction set). Row nets get a higher weight because non-local
//! reductions are more expensive than multicasts (Sec. IV-C).
//!
//! Time balancing (Sec. IV-C) adds `q` extra balance constraints: each
//! operation is bucketed into a depth quantile of the SpTRSV dependence
//! graph, and each quantile is balanced across parts.

use azul_hypergraph::{Hypergraph, HypergraphBuilder};
use azul_sparse::{levels, Csr};

/// Default weight ratio of row (reduction) nets to column (multicast)
/// nets.
pub const DEFAULT_ROW_EDGE_WEIGHT: u64 = 2;

/// Default number of time-balancing quantiles (the paper uses q = 5).
pub const DEFAULT_QUANTILES: usize = 5;

/// A hypergraph for one matrix workload plus the vertex-id layout.
#[derive(Debug, Clone)]
pub struct WorkloadHypergraph {
    /// The hypergraph: vertices `0..nnz` are matrix nonzeros in CSR
    /// row-major order; vertices `nnz..nnz+n` are vector elements.
    pub hg: Hypergraph,
    /// Number of matrix-nonzero vertices (vector vertices follow).
    pub num_nnz: usize,
    /// Vector dimension.
    pub num_rows: usize,
}

impl WorkloadHypergraph {
    /// Vertex id of the `p`-th nonzero.
    pub fn nnz_vertex(&self, p: usize) -> usize {
        debug_assert!(p < self.num_nnz);
        p
    }

    /// Vertex id of vector element `i`.
    pub fn vec_vertex(&self, i: usize) -> usize {
        debug_assert!(i < self.num_rows);
        self.num_nnz + i
    }
}

/// Builds the PCG mapping hypergraph for matrix `a`.
///
/// * `row_edge_weight` — weight of row (reduction) nets; column nets get
///   weight 1.
/// * `quantiles` — number of time-balance constraints (0 disables time
///   balancing; the paper's Fig. 17 uses 5).
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn build_pcg_hypergraph(a: &Csr, row_edge_weight: u64, quantiles: usize) -> WorkloadHypergraph {
    assert_eq!(a.rows(), a.cols(), "PCG needs a square matrix");
    let n = a.rows();
    let nnz = a.nnz();
    let num_constraints = 1 + quantiles;
    let mut b = HypergraphBuilder::new(num_constraints);

    // Depth quantile of every vertex, if time balancing is on.
    let quantile_of = if quantiles > 0 {
        Some(depth_quantiles(a, quantiles))
    } else {
        None
    };

    // Nonzero vertices.
    let mut wbuf = vec![0u64; num_constraints];
    for p in 0..nnz {
        wbuf.iter_mut().for_each(|w| *w = 0);
        wbuf[0] = 1;
        if let Some(q) = &quantile_of {
            wbuf[1 + q.entry[p]] = 1;
        }
        b.add_vertex(&wbuf);
    }
    // Vector vertices.
    for i in 0..n {
        wbuf.iter_mut().for_each(|w| *w = 0);
        wbuf[0] = 1;
        if let Some(q) = &quantile_of {
            wbuf[1 + q.variable[i]] = 1;
        }
        b.add_vertex(&wbuf);
    }

    // Column nets: {v_j} ∪ nonzeros of column j.
    let mut col_pins: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut row_pins: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (p, (r, c, _)) in a.iter().enumerate() {
        col_pins[c].push(p);
        row_pins[r].push(p);
    }
    for (j, pins) in col_pins.iter_mut().enumerate() {
        pins.push(nnz + j);
        // azul-lint: allow(unwrap-in-pipeline) pin ids are bounded by nnz + n, sized into the builder
        b.add_net(1, pins).expect("column pins are valid");
    }
    // Row nets: {y_i} ∪ nonzeros of row i, weighted.
    for (i, pins) in row_pins.iter_mut().enumerate() {
        pins.push(nnz + i);
        b.add_net(row_edge_weight, pins)
            // azul-lint: allow(unwrap-in-pipeline) pin ids are bounded by nnz + n, sized into the builder
            .expect("row pins are valid");
    }

    WorkloadHypergraph {
        // azul-lint: allow(unwrap-in-pipeline) builder saw only validated nets, finalize cannot fail
        hg: b.finalize().expect("workload hypergraph is well-formed"),
        num_nnz: nnz,
        num_rows: n,
    }
}

/// Depth quantiles of all entries and variables, from the SpTRSV
/// dependence DAG of `tril(a)`.
struct DepthQuantiles {
    /// Quantile of each stored entry of `a` (CSR order).
    entry: Vec<usize>,
    /// Quantile of each variable (row).
    variable: Vec<usize>,
}

fn depth_quantiles(a: &Csr, q: usize) -> DepthQuantiles {
    let n = a.rows();
    // Variable depths in the lower-triangular solve.
    let ls = levels::level_sets(&a.lower_triangle());
    let var_depth = ls.level_of();

    // Quantile boundaries with equal variable population.
    let mut sorted: Vec<usize> = var_depth.to_vec();
    sorted.sort_unstable();
    let quantile = |d: usize| -> usize {
        // Index of the first element > d, scaled into q buckets.
        let rank = sorted.partition_point(|&x| x <= d);
        (((rank.saturating_sub(1)) * q) / n.max(1)).min(q - 1)
    };

    // Entry (r, c) performs its FMAC when variable min(r, c) resolves.
    let entry: Vec<usize> = a
        .iter()
        .map(|(r, c, _)| quantile(var_depth[r.min(c)]))
        .collect();
    let variable: Vec<usize> = (0..n).map(|i| quantile(var_depth[i])).collect();
    DepthQuantiles { entry, variable }
}

#[cfg(test)]
mod tests {
    use super::*;
    use azul_sparse::generate;

    #[test]
    fn vertex_layout() {
        let a = generate::grid_laplacian_2d(4, 4);
        let w = build_pcg_hypergraph(&a, 2, 0);
        assert_eq!(w.hg.num_vertices(), a.nnz() + 16);
        assert_eq!(w.nnz_vertex(3), 3);
        assert_eq!(w.vec_vertex(0), a.nnz());
        // One column net and one row net per index.
        assert_eq!(w.hg.num_nets(), 32);
    }

    #[test]
    fn row_nets_carry_higher_weight() {
        let a = generate::grid_laplacian_2d(3, 3);
        let w = build_pcg_hypergraph(&a, 3, 0);
        let n = 9;
        // First n nets are column nets (weight 1), next n row nets.
        for e in 0..n {
            assert_eq!(w.hg.net_weight(e), 1);
        }
        for e in n..2 * n {
            assert_eq!(w.hg.net_weight(e), 3);
        }
    }

    #[test]
    fn nets_contain_vector_vertex() {
        let a = generate::grid_laplacian_2d(3, 3);
        let w = build_pcg_hypergraph(&a, 2, 0);
        // Column net j includes vec vertex j.
        for j in 0..9 {
            assert!(w.hg.pins(j).contains(&w.vec_vertex(j)));
        }
        // Row net i includes vec vertex i.
        for i in 0..9 {
            assert!(w.hg.pins(9 + i).contains(&w.vec_vertex(i)));
        }
    }

    #[test]
    fn quantile_constraints_partition_weight() {
        let a = generate::fem_mesh_3d(100, 4, 3);
        let q = 5;
        let w = build_pcg_hypergraph(&a, 2, q);
        assert_eq!(w.hg.num_constraints(), 1 + q);
        let totals = w.hg.total_weights();
        // Constraint 0 counts every vertex.
        assert_eq!(totals[0] as usize, a.nnz() + 100);
        // Quantile constraints cover every vertex exactly once.
        let qsum: u64 = totals[1..].iter().sum();
        assert_eq!(qsum as usize, a.nnz() + 100);
        // No quantile is empty for a matrix with real depth spread.
        assert!(totals[1..].iter().all(|&t| t > 0), "{totals:?}");
    }

    #[test]
    fn zero_quantiles_is_single_constraint() {
        let a = generate::tridiagonal(10);
        let w = build_pcg_hypergraph(&a, 2, 0);
        assert_eq!(w.hg.num_constraints(), 1);
    }

    #[test]
    fn deep_chain_spreads_across_quantiles() {
        // Tridiagonal: depth = row index; quantiles = contiguous fifths.
        let a = generate::tridiagonal(50);
        let w = build_pcg_hypergraph(&a, 2, 5);
        let totals = w.hg.total_weights();
        let spread: Vec<u64> = totals[1..].to_vec();
        let max = *spread.iter().max().unwrap();
        let min = *spread.iter().min().unwrap();
        assert!(max <= 2 * min, "quantiles should be near-equal: {spread:?}");
    }
}
