//! Structured phase spans: a minimal tracing-style layer.
//!
//! The real `tracing` crate is unavailable in this build environment, so
//! this module provides the same shape at the scale the repository needs:
//!
//! * [`span`] opens a named span and returns an RAII [`SpanGuard`];
//!   dropping the guard closes the span and reports wall-clock time (and
//!   an optional simulated-cycle count) to the installed subscriber;
//! * [`Subscriber`] is the sink trait; [`Collector`] is the
//!   repo-provided subscriber that accumulates [`SpanRecord`]s for
//!   inclusion in a telemetry report, and [`StderrSubscriber`] prints
//!   close events live for interactive debugging;
//! * recording is globally gated: until [`install`] is called, [`span`]
//!   costs one relaxed atomic load and allocates nothing.
//!
//! Spans nest: guards track their depth so subscribers can reconstruct
//! the phase tree (`prepare` > `coloring`, `prepare` > `mapping`, ...).
//!
//! ```
//! use azul_telemetry::span::{self, Collector};
//!
//! let collector = Collector::install();
//! {
//!     let _prepare = span::span("prepare");
//!     let mut compile = span::span("compile");
//!     compile.record_cycles(1234);
//! } // guards close here
//! let records = collector.drain();
//! assert_eq!(records.len(), 2);
//! assert_eq!(records[1].name, "prepare");
//! assert_eq!(records[0].cycles, Some(1234));
//! ```

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A closed span, as delivered to subscribers.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name, e.g. `"mapping"` or `"kernel/spmv"`.
    pub name: String,
    /// Nesting depth at open time (0 = top level).
    pub depth: usize,
    /// Wall-clock duration in nanoseconds.
    pub wall_ns: u128,
    /// Simulated cycles attributed to the span, if any were recorded.
    pub cycles: Option<u64>,
    /// Free-form key/value annotations added via [`SpanGuard::annotate`].
    pub fields: Vec<(String, String)>,
}

impl SpanRecord {
    /// Wall-clock duration in milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.wall_ns as f64 / 1e6
    }
}

/// A sink for closed spans.
pub trait Subscriber: Send + Sync {
    /// Called once per span, when its guard drops.
    fn on_close(&self, record: SpanRecord);
}

/// The installed subscriber plus the cheap enabled flag.
struct Registry {
    subscriber: Mutex<Option<Arc<dyn Subscriber>>>,
    enabled: AtomicBool,
    depth: AtomicUsize,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        subscriber: Mutex::new(None),
        enabled: AtomicBool::new(false),
        depth: AtomicUsize::new(0),
    })
}

/// Installs `subscriber` as the global span sink, replacing any previous
/// one, and enables recording.
pub fn install(subscriber: Arc<dyn Subscriber>) {
    let reg = registry();
    *reg.subscriber.lock().unwrap() = Some(subscriber);
    reg.enabled.store(true, Ordering::Release);
}

/// Disables recording and drops the installed subscriber.
pub fn uninstall() {
    let reg = registry();
    reg.enabled.store(false, Ordering::Release);
    *reg.subscriber.lock().unwrap() = None;
}

/// Whether a subscriber is installed (spans are being recorded).
pub fn enabled() -> bool {
    registry().enabled.load(Ordering::Acquire)
}

/// Opens a span named `name`. Near-free when no subscriber is installed.
pub fn span(name: impl Into<String>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { live: None };
    }
    let reg = registry();
    let depth = reg.depth.fetch_add(1, Ordering::AcqRel);
    SpanGuard {
        live: Some(LiveSpan {
            name: name.into(),
            depth,
            // azul-lint: allow(wall-clock-in-sim) spans measure host-side wall time by design; simulated-cycle accounting never reads it
            started: Instant::now(),
            cycles: None,
            fields: Vec::new(),
        }),
    }
}

struct LiveSpan {
    name: String,
    depth: usize,
    started: Instant,
    cycles: Option<u64>,
    fields: Vec<(String, String)>,
}

/// RAII guard for an open span; closing happens on drop.
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl SpanGuard {
    /// Attributes `cycles` simulated cycles to this span (accumulates
    /// across calls, for spans covering several kernel launches).
    pub fn record_cycles(&mut self, cycles: u64) {
        if let Some(live) = &mut self.live {
            *live.cycles.get_or_insert(0) += cycles;
        }
    }

    /// Attaches a key/value annotation to this span.
    pub fn annotate(&mut self, key: impl Into<String>, value: impl ToString) {
        if let Some(live) = &mut self.live {
            live.fields.push((key.into(), value.to_string()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let reg = registry();
        reg.depth.fetch_sub(1, Ordering::AcqRel);
        let record = SpanRecord {
            name: live.name,
            depth: live.depth,
            wall_ns: live.started.elapsed().as_nanos(),
            cycles: live.cycles,
            fields: live.fields,
        };
        // Fetch the subscriber under the lock, deliver outside it, so a
        // subscriber may itself open spans without deadlocking.
        let subscriber = reg.subscriber.lock().unwrap().clone();
        if let Some(sub) = subscriber {
            sub.on_close(record);
        }
    }
}

/// The repo-provided subscriber: collects spans for report export.
#[derive(Default)]
pub struct Collector {
    records: Mutex<Vec<SpanRecord>>,
}

impl Collector {
    /// Creates a collector and installs it globally; returns a handle
    /// for draining.
    pub fn install() -> Arc<Collector> {
        let collector = Arc::new(Collector::default());
        install(collector.clone());
        collector
    }

    /// Takes all records collected so far (close order: children first).
    pub fn drain(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut self.records.lock().unwrap())
    }
}

impl Subscriber for Collector {
    fn on_close(&self, record: SpanRecord) {
        self.records.lock().unwrap().push(record);
    }
}

/// A live subscriber that prints each closed span to stderr.
pub struct StderrSubscriber;

impl Subscriber for StderrSubscriber {
    fn on_close(&self, record: SpanRecord) {
        let indent = "  ".repeat(record.depth);
        let cycles = record
            .cycles
            .map(|c| format!(" cycles={c}"))
            .unwrap_or_default();
        eprintln!(
            "[span] {indent}{} wall={:.3}ms{cycles}",
            record.name,
            record.wall_ms()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share one global registry; run them under one lock so
    // parallel test threads don't fight over the installed subscriber.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = serial();
        uninstall();
        let mut s = span("ignored");
        s.record_cycles(10);
        drop(s);
        assert!(!enabled());
    }

    #[test]
    fn collector_sees_nesting_and_cycles() {
        let _guard = serial();
        let collector = Collector::install();
        {
            let mut outer = span("outer");
            outer.annotate("matrix", "demo");
            {
                let mut inner = span("inner");
                inner.record_cycles(5);
                inner.record_cycles(7);
            }
        }
        uninstall();
        let records = collector.drain();
        assert_eq!(records.len(), 2);
        // Children close first.
        assert_eq!(records[0].name, "inner");
        assert_eq!(records[0].depth, 1);
        assert_eq!(records[0].cycles, Some(12));
        assert_eq!(records[1].name, "outer");
        assert_eq!(records[1].depth, 0);
        assert_eq!(records[1].cycles, None);
        assert_eq!(
            records[1].fields,
            vec![("matrix".to_string(), "demo".to_string())]
        );
    }
}
