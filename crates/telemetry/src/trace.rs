//! Deterministic simulated-time event tracing.
//!
//! The telemetry report (see [`crate::report`]) aggregates a whole run
//! into counters and heatmaps; this module records *when* things
//! happened. Producers (the cycle-level simulator) append compact
//! [`TraceEvent`]s — kernel begin/end, PE operations and wakes, router
//! forwards and retirements, fault firings — stamped in simulated
//! cycles, into a [`TraceBuf`] carried alongside the kernel statistics.
//! [`chrome_trace_json`] then renders the buffer as a Chrome
//! trace-event / Perfetto JSON document (one track per PE, one per
//! router, one for the kernel timeline, one for supervisor escalations)
//! that opens directly in `ui.perfetto.dev` or `chrome://tracing`.
//!
//! # Determinism contract
//!
//! Traced runs must stay byte-identical across `SimConfig::threads`,
//! `SimConfig::fast_forward` and repeated seeded-fault runs. Three
//! properties deliver that:
//!
//! 1. During collection only the per-category filter applies — a pure
//!    per-event predicate, so every engine configuration records the
//!    same multiset of events (shards collect into private buffers).
//! 2. Every event is keyed `(cycle, tile, kind, arg)` and [`TraceBuf::
//!    seal`] sorts on exactly that derived order at the serial end of
//!    the kernel, erasing shard/interleaving differences.
//! 3. The bounded-capacity policy is deterministic stride sampling
//!    applied only to the *sorted* buffer (never mid-collection), so
//!    which events are dropped depends only on the sorted content.
//!
//! Events are transitions, not states: a fast-forwarded idle gap simply
//! contains no events, so skipping it changes nothing.

use crate::json::Value;

/// Category bit: kernel begin/end markers.
pub const CAT_KERNEL: u8 = 1 << 0;
/// Category bit: PE compute and wake events.
pub const CAT_PE: u8 = 1 << 1;
/// Category bit: router enqueue/forward/retire events.
pub const CAT_ROUTER: u8 = 1 << 2;
/// Category bit: fault-injection firings.
pub const CAT_FAULT: u8 = 1 << 3;
/// Category bit: supervisor escalation markers (export-side only).
pub const CAT_SUPERVISOR: u8 = 1 << 4;
/// All categories.
pub const CAT_ALL: u8 = CAT_KERNEL | CAT_PE | CAT_ROUTER | CAT_FAULT | CAT_SUPERVISOR;

/// What a [`TraceEvent`] records. The discriminant order is part of the
/// deterministic sort key (events sharing a cycle and tile order by
/// kind), so variants must keep their positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceKind {
    /// A kernel started (tile 0 by convention; `arg` is unused).
    KernelBegin = 0,
    /// A kernel reached quiescence (`arg` is unused).
    KernelEnd = 1,
    /// A PE issued an operation; `arg` is the operation code
    /// (0 = fmac, 1 = add, 2 = mul, 3 = send).
    PeOp = 2,
    /// A message woke (or queued work on) a PE; `arg` is the trigger
    /// discriminant (0 = x-value, 1 = partial, 2 = send-v, 3 = solve).
    PeWake = 3,
    /// A flit entered a router's injection queue; `arg` is the port.
    RouterEnqueue = 4,
    /// A router forwarded a flit out of a link; `arg` is the direction.
    RouterForward = 5,
    /// A router fully retired a queued flit; `arg` is the port.
    RouterRetire = 6,
    /// An injected fault fired; `arg` is the fault-kind code.
    FaultFire = 7,
}

impl TraceKind {
    /// The category bit this kind belongs to.
    pub fn category(self) -> u8 {
        match self {
            TraceKind::KernelBegin | TraceKind::KernelEnd => CAT_KERNEL,
            TraceKind::PeOp | TraceKind::PeWake => CAT_PE,
            TraceKind::RouterEnqueue | TraceKind::RouterForward | TraceKind::RouterRetire => {
                CAT_ROUTER
            }
            TraceKind::FaultFire => CAT_FAULT,
        }
    }

    /// Stable label used in exports and summaries.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::KernelBegin => "kernel-begin",
            TraceKind::KernelEnd => "kernel-end",
            TraceKind::PeOp => "pe-op",
            TraceKind::PeWake => "pe-wake",
            TraceKind::RouterEnqueue => "router-enqueue",
            TraceKind::RouterForward => "router-forward",
            TraceKind::RouterRetire => "router-retire",
            TraceKind::FaultFire => "fault-fire",
        }
    }
}

/// One traced transition. Field order matters: the derived `Ord` is the
/// deterministic sort key `(cycle, tile, kind, arg)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceEvent {
    /// Simulated cycle the transition happened on.
    pub cycle: u64,
    /// Tile index (0 for machine-level events).
    pub tile: u32,
    /// What happened.
    pub kind: TraceKind,
    /// Kind-specific payload (op code, port, direction, fault code).
    pub arg: u64,
}

/// How tracing is configured for a run. Referenced from
/// `SimConfig::trace`; `None` there keeps the zero-trace fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Bitmask of [`CAT_KERNEL`]-style category bits to record.
    pub categories: u8,
    /// Maximum events kept per kernel after sealing (0 = unbounded).
    pub capacity: usize,
}

impl Default for TraceConfig {
    /// Everything on, 65 536 events per kernel.
    fn default() -> Self {
        TraceConfig {
            categories: CAT_ALL,
            capacity: 65_536,
        }
    }
}

/// A bounded, category-filtered event buffer. The default value is
/// fully disabled: `wants` answers `false` for every category, so an
/// untraced run never constructs an event.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceBuf {
    mask: u8,
    capacity: usize,
    /// The recorded events (sorted once sealed).
    pub events: Vec<TraceEvent>,
    /// Events discarded by the bounded-capacity compaction.
    pub dropped: u64,
}

impl TraceBuf {
    /// Arms the buffer with a category mask and per-kernel capacity.
    pub fn configure(&mut self, cfg: TraceConfig) {
        self.mask = cfg.categories;
        self.capacity = cfg.capacity;
    }

    /// Whether any of the given category bits are being recorded. The
    /// hot-path guard: `mask == 0` (the default) short-circuits every
    /// hook to one branch.
    #[inline]
    pub fn wants(&self, category: u8) -> bool {
        self.mask & category != 0
    }

    /// The armed category mask (0 when tracing is off).
    pub fn mask(&self) -> u8 {
        self.mask
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends one event. Call only behind [`TraceBuf::wants`].
    #[inline]
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Absorbs another buffer, offsetting its cycles by `cycle_offset`
    /// (the number of cycles this buffer already accounts for). Never
    /// compacts: shard buffers merge in shard order before the sort, so
    /// any mid-merge sampling would depend on the shard partition.
    pub fn merge(&mut self, other: &TraceBuf, cycle_offset: u64) {
        self.mask |= other.mask;
        self.capacity = self.capacity.max(other.capacity);
        self.dropped += other.dropped;
        self.events.extend(other.events.iter().map(|e| TraceEvent {
            cycle: e.cycle + cycle_offset,
            ..*e
        }));
    }

    /// Sorts the buffer into its canonical `(cycle, tile, kind, arg)`
    /// order and applies the bounded-capacity stride compaction. Called
    /// serially at the end of every kernel (and again after frontend
    /// merges); idempotent on an already-sealed buffer that fits.
    pub fn seal(&mut self) {
        self.events.sort_unstable();
        if self.capacity == 0 || self.events.len() <= self.capacity {
            return;
        }
        // Kernel begin/end markers are structural (Perfetto needs the
        // balanced B/E pair) and fault firings are rare but semantically
        // critical, so both always survive; the rest is sampled at a
        // deterministic stride computed from the sorted length.
        let pin = |e: &TraceEvent| {
            matches!(
                e.kind,
                TraceKind::KernelBegin | TraceKind::KernelEnd | TraceKind::FaultFire
            )
        };
        let pinned = self.events.iter().filter(|e| pin(e)).count();
        let budget = self.capacity.saturating_sub(pinned).max(1);
        let samplable = self.events.len() - pinned;
        let stride = samplable.div_ceil(budget).max(1);
        let before = self.events.len();
        let mut i = 0usize;
        self.events.retain(|e| {
            if pin(e) {
                return true;
            }
            let keep = i.is_multiple_of(stride);
            i += 1;
            keep
        });
        self.dropped += (before - self.events.len()) as u64;
    }

    /// Events recorded per category, in [`CAT_KERNEL`] bit order:
    /// `[kernel, pe, router, fault]`.
    pub fn category_counts(&self) -> [u64; 4] {
        let mut counts = [0u64; 4];
        for e in &self.events {
            let slot = match e.kind.category() {
                CAT_KERNEL => 0,
                CAT_PE => 1,
                CAT_ROUTER => 2,
                _ => 3,
            };
            counts[slot] += 1;
        }
        counts
    }
}

/// Operation-code labels for [`TraceKind::PeOp`] events (indexes match
/// the simulator's `OpKind` order).
const PE_OP_NAMES: [&str; 4] = ["fmac", "add", "mul", "send"];

fn pe_op_name(arg: u64) -> &'static str {
    PE_OP_NAMES.get(arg as usize).copied().unwrap_or("op")
}

/// Track (pid) assignment in the exported document.
const PID_KERNEL: u64 = 0;
const PID_PE: u64 = 1;
const PID_ROUTER: u64 = 2;
const PID_SUPERVISOR: u64 = 3;

fn metadata(pid: u64, tid: u64, which: &str, label: &str) -> Value {
    Value::object()
        .field("ph", "M")
        .field("pid", pid)
        .field("tid", tid)
        .field("name", which)
        .field("args", Value::object().field("name", label))
}

/// Renders a sealed [`TraceBuf`] as a Chrome trace-event / Perfetto
/// JSON document. One simulated cycle maps to one microsecond of trace
/// time. Every one of the `num_tiles` PEs and routers gets its own
/// named track (emitted as metadata even when it recorded nothing, so
/// the timeline shape is stable). `supervisor_marks` — cycle-stamped
/// escalation labels from a supervised solve — land on a dedicated
/// supervisor track; pass an empty slice for plain runs.
pub fn chrome_trace_json(
    buf: &TraceBuf,
    num_tiles: u32,
    supervisor_marks: &[(u64, String)],
) -> Value {
    let mut events: Vec<Value> = Vec::with_capacity(buf.events.len() + 2 * num_tiles as usize + 8);

    // Track names first: process names for the four pids, one thread
    // name per PE and per router.
    events.push(metadata(PID_KERNEL, 0, "process_name", "kernel"));
    events.push(metadata(PID_PE, 0, "process_name", "pe"));
    events.push(metadata(PID_ROUTER, 0, "process_name", "router"));
    if !supervisor_marks.is_empty() {
        events.push(metadata(PID_SUPERVISOR, 0, "process_name", "supervisor"));
        events.push(metadata(PID_SUPERVISOR, 0, "thread_name", "escalations"));
    }
    events.push(metadata(PID_KERNEL, 0, "thread_name", "timeline"));
    for t in 0..num_tiles as u64 {
        events.push(metadata(PID_PE, t, "thread_name", &format!("pe{t}")));
        events.push(metadata(
            PID_ROUTER,
            t,
            "thread_name",
            &format!("router{t}"),
        ));
    }

    // The buffer is sealed (sorted by cycle first), so emitting in
    // order yields globally monotonic timestamps.
    for e in &buf.events {
        let ts = e.cycle;
        let ev = match e.kind {
            TraceKind::KernelBegin => Value::object()
                .field("ph", "B")
                .field("pid", PID_KERNEL)
                .field("tid", 0u64)
                .field("ts", ts)
                .field("name", "kernel"),
            TraceKind::KernelEnd => Value::object()
                .field("ph", "E")
                .field("pid", PID_KERNEL)
                .field("tid", 0u64)
                .field("ts", ts)
                .field("name", "kernel"),
            TraceKind::PeOp => Value::object()
                .field("ph", "X")
                .field("pid", PID_PE)
                .field("tid", e.tile as u64)
                .field("ts", ts)
                .field("dur", 1u64)
                .field("name", pe_op_name(e.arg)),
            TraceKind::PeWake => Value::object()
                .field("ph", "i")
                .field("pid", PID_PE)
                .field("tid", e.tile as u64)
                .field("ts", ts)
                .field("s", "t")
                .field("name", "wake")
                .field("args", Value::object().field("trigger", e.arg)),
            TraceKind::RouterEnqueue => Value::object()
                .field("ph", "i")
                .field("pid", PID_ROUTER)
                .field("tid", e.tile as u64)
                .field("ts", ts)
                .field("s", "t")
                .field("name", "enqueue")
                .field("args", Value::object().field("port", e.arg)),
            TraceKind::RouterForward => Value::object()
                .field("ph", "i")
                .field("pid", PID_ROUTER)
                .field("tid", e.tile as u64)
                .field("ts", ts)
                .field("s", "t")
                .field("name", "forward")
                .field("args", Value::object().field("dir", e.arg)),
            TraceKind::RouterRetire => Value::object()
                .field("ph", "i")
                .field("pid", PID_ROUTER)
                .field("tid", e.tile as u64)
                .field("ts", ts)
                .field("s", "t")
                .field("name", "retire")
                .field("args", Value::object().field("port", e.arg)),
            TraceKind::FaultFire => Value::object()
                .field("ph", "i")
                .field("pid", PID_KERNEL)
                .field("tid", 0u64)
                .field("ts", ts)
                .field("s", "g")
                .field("name", "fault")
                .field(
                    "args",
                    Value::object()
                        .field("tile", e.tile as u64)
                        .field("kind", e.arg),
                ),
        };
        events.push(ev);
    }

    for (cycle, label) in supervisor_marks {
        events.push(
            Value::object()
                .field("ph", "i")
                .field("pid", PID_SUPERVISOR)
                .field("tid", 0u64)
                .field("ts", *cycle)
                .field("s", "g")
                .field("name", label.as_str()),
        );
    }

    Value::object()
        .field("traceEvents", Value::Arr(events))
        .field("displayTimeUnit", "ms")
        .field(
            "otherData",
            Value::object()
                .field("clock", "simulated-cycles")
                .field("cycle_us", 1u64)
                .field("dropped", buf.dropped),
        )
}

/// Summary of a validated Chrome trace document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// Non-metadata events in the document.
    pub events: u64,
    /// `ph:"X"`/instant/begin events per category name.
    pub begins: u64,
    /// `ph:"E"` events.
    pub ends: u64,
    /// Distinct (pid, tid) tracks that carry a `thread_name`.
    pub named_tracks: u64,
}

/// Validates a Chrome trace-event document: well-formed envelope,
/// globally monotonic non-decreasing `ts` over non-metadata events, and
/// balanced `B`/`E` pairs per (pid, tid) stack.
///
/// # Errors
///
/// Returns a description of the first structural violation.
pub fn validate_chrome_trace(doc: &Value) -> Result<TraceCheck, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    let mut check = TraceCheck::default();
    let mut last_ts: Option<u64> = None;
    // (pid, tid) -> open-begin depth.
    let mut stacks: std::collections::BTreeMap<(u64, u64), i64> = std::collections::BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let pid = ev.get("pid").and_then(Value::as_u64).unwrap_or(0);
        let tid = ev.get("tid").and_then(Value::as_u64).unwrap_or(0);
        if ph == "M" {
            if ev.get("name").and_then(Value::as_str) == Some("thread_name") {
                check.named_tracks += 1;
            }
            continue;
        }
        let ts = ev
            .get("ts")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        if let Some(prev) = last_ts {
            if ts < prev {
                return Err(format!("event {i}: ts {ts} < previous {prev}"));
            }
        }
        last_ts = Some(ts);
        check.events += 1;
        match ph {
            "B" => {
                check.begins += 1;
                *stacks.entry((pid, tid)).or_insert(0) += 1;
            }
            "E" => {
                check.ends += 1;
                let depth = stacks.entry((pid, tid)).or_insert(0);
                *depth -= 1;
                if *depth < 0 {
                    return Err(format!("event {i}: E without matching B on {pid}/{tid}"));
                }
            }
            _ => {}
        }
    }
    if let Some(((pid, tid), _)) = stacks.iter().find(|(_, depth)| **depth != 0) {
        return Err(format!("unbalanced B/E on track {pid}/{tid}"));
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, tile: u32, kind: TraceKind, arg: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            tile,
            kind,
            arg,
        }
    }

    #[test]
    fn default_buffer_is_fully_disabled() {
        let buf = TraceBuf::default();
        assert!(!buf.wants(CAT_KERNEL));
        assert!(!buf.wants(CAT_ALL));
        assert_eq!(buf.mask(), 0);
    }

    #[test]
    fn category_filter_masks_pushes() {
        let mut buf = TraceBuf::default();
        buf.configure(TraceConfig {
            categories: CAT_PE,
            capacity: 0,
        });
        assert!(buf.wants(CAT_PE));
        assert!(!buf.wants(CAT_ROUTER));
        assert!(buf.wants(CAT_PE | CAT_ROUTER), "any-bit semantics");
    }

    #[test]
    fn seal_sorts_into_canonical_order() {
        let mut buf = TraceBuf::default();
        buf.configure(TraceConfig::default());
        buf.push(ev(5, 1, TraceKind::PeOp, 0));
        buf.push(ev(2, 3, TraceKind::RouterForward, 1));
        buf.push(ev(2, 0, TraceKind::PeWake, 0));
        buf.push(ev(5, 1, TraceKind::PeOp, 2));
        buf.seal();
        let cycles: Vec<u64> = buf.events.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 2, 5, 5]);
        assert_eq!(buf.events[0].tile, 0);
        assert!(buf.events[2].arg < buf.events[3].arg, "arg breaks ties");
    }

    #[test]
    fn seal_order_is_insertion_invariant() {
        let mut a = TraceBuf::default();
        let mut b = TraceBuf::default();
        a.configure(TraceConfig::default());
        b.configure(TraceConfig::default());
        let evs = [
            ev(1, 0, TraceKind::PeOp, 0),
            ev(1, 1, TraceKind::PeOp, 3),
            ev(3, 0, TraceKind::RouterRetire, 4),
            ev(0, 0, TraceKind::KernelBegin, 0),
        ];
        for e in evs {
            a.push(e);
        }
        for e in evs.iter().rev() {
            b.push(*e);
        }
        a.seal();
        b.seal();
        assert_eq!(a, b);
    }

    #[test]
    fn compaction_is_deterministic_and_keeps_kernel_markers() {
        let build = || {
            let mut buf = TraceBuf::default();
            buf.configure(TraceConfig {
                categories: CAT_ALL,
                capacity: 10,
            });
            buf.push(ev(0, 0, TraceKind::KernelBegin, 0));
            for c in 0..100u64 {
                buf.push(ev(c + 1, (c % 4) as u32, TraceKind::PeOp, c % 4));
            }
            buf.push(ev(50, 2, TraceKind::FaultFire, 3));
            buf.push(ev(101, 0, TraceKind::KernelEnd, 0));
            buf.seal();
            buf
        };
        let (a, b) = (build(), build());
        assert_eq!(a, b, "compaction is reproducible");
        assert!(
            a.events.len() <= 11,
            "capacity respected: {}",
            a.events.len()
        );
        assert!(a.dropped >= 90);
        assert!(a.events.iter().any(|e| e.kind == TraceKind::KernelBegin));
        assert!(a.events.iter().any(|e| e.kind == TraceKind::KernelEnd));
        assert!(
            a.events.iter().any(|e| e.kind == TraceKind::FaultFire),
            "fault markers are pinned through compaction"
        );
    }

    #[test]
    fn unbounded_capacity_never_drops() {
        let mut buf = TraceBuf::default();
        buf.configure(TraceConfig {
            categories: CAT_ALL,
            capacity: 0,
        });
        for c in 0..1000u64 {
            buf.push(ev(c, 0, TraceKind::PeOp, 0));
        }
        buf.seal();
        assert_eq!(buf.events.len(), 1000);
        assert_eq!(buf.dropped, 0);
    }

    #[test]
    fn merge_offsets_cycles_and_accumulates_drops() {
        let mut a = TraceBuf::default();
        a.configure(TraceConfig::default());
        a.push(ev(0, 0, TraceKind::KernelBegin, 0));
        a.push(ev(10, 0, TraceKind::KernelEnd, 0));
        a.seal();
        let mut b = TraceBuf::default();
        b.configure(TraceConfig::default());
        b.push(ev(0, 0, TraceKind::KernelBegin, 0));
        b.push(ev(7, 0, TraceKind::KernelEnd, 0));
        b.dropped = 3;
        b.seal();
        a.merge(&b, 10);
        assert_eq!(a.events.len(), 4);
        assert_eq!(a.events[2].cycle, 10, "second kernel begins at offset");
        assert_eq!(a.events[3].cycle, 17);
        assert_eq!(a.dropped, 3);
    }

    #[test]
    fn category_counts_bucket_by_kind() {
        let mut buf = TraceBuf::default();
        buf.configure(TraceConfig::default());
        buf.push(ev(0, 0, TraceKind::KernelBegin, 0));
        buf.push(ev(1, 0, TraceKind::PeOp, 0));
        buf.push(ev(1, 0, TraceKind::PeWake, 1));
        buf.push(ev(2, 0, TraceKind::RouterForward, 0));
        buf.push(ev(3, 0, TraceKind::FaultFire, 2));
        buf.push(ev(4, 0, TraceKind::KernelEnd, 0));
        assert_eq!(buf.category_counts(), [2, 2, 1, 1]);
    }

    #[test]
    fn chrome_export_validates_and_names_every_track() {
        let mut buf = TraceBuf::default();
        buf.configure(TraceConfig::default());
        buf.push(ev(0, 0, TraceKind::KernelBegin, 0));
        buf.push(ev(1, 2, TraceKind::PeWake, 0));
        buf.push(ev(2, 2, TraceKind::PeOp, 0));
        buf.push(ev(2, 1, TraceKind::RouterEnqueue, 4));
        buf.push(ev(3, 1, TraceKind::RouterForward, 0));
        buf.push(ev(4, 1, TraceKind::RouterRetire, 4));
        buf.push(ev(5, 3, TraceKind::FaultFire, 1));
        buf.push(ev(9, 0, TraceKind::KernelEnd, 0));
        buf.seal();
        let doc = chrome_trace_json(&buf, 4, &[(9, "solver:pcg->bicgstab".to_string())]);
        let check = validate_chrome_trace(&doc).expect("valid document");
        // 8 sim events + 1 supervisor mark.
        assert_eq!(check.events, 9);
        assert_eq!(check.begins, 1);
        assert_eq!(check.ends, 1);
        // kernel timeline + 4 PEs + 4 routers + supervisor.
        assert_eq!(check.named_tracks, 10);
        // Round-trips through the strict parser.
        let text = doc.to_string_compact();
        let reparsed = crate::json::parse(&text).expect("parseable");
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn validator_rejects_regressions() {
        // ts going backwards.
        let bad = Value::object().field(
            "traceEvents",
            Value::Arr(vec![
                Value::object()
                    .field("ph", "i")
                    .field("pid", 0u64)
                    .field("tid", 0u64)
                    .field("ts", 5u64)
                    .field("name", "a"),
                Value::object()
                    .field("ph", "i")
                    .field("pid", 0u64)
                    .field("tid", 0u64)
                    .field("ts", 4u64)
                    .field("name", "b"),
            ]),
        );
        assert!(validate_chrome_trace(&bad).is_err());
        // Unbalanced begin.
        let unbalanced = Value::object().field(
            "traceEvents",
            Value::Arr(vec![Value::object()
                .field("ph", "B")
                .field("pid", 0u64)
                .field("tid", 0u64)
                .field("ts", 0u64)
                .field("name", "kernel")]),
        );
        assert!(validate_chrome_trace(&unbalanced).is_err());
        // Missing envelope.
        assert!(validate_chrome_trace(&Value::object()).is_err());
    }
}
