//! A dependency-free JSON document model, writer, and parser.
//!
//! The build environment cannot pull `serde`/`serde_json`, so the
//! telemetry report serializes through this small module instead. It
//! covers exactly what telemetry export needs:
//!
//! * [`Value`] — a JSON document tree with builder helpers; object keys
//!   keep insertion order so reports diff cleanly;
//! * [`Value::to_string_pretty`] / [`Value::to_string_compact`] — RFC
//!   8259-conformant output (string escaping, `null` for non-finite
//!   floats);
//! * [`parse`] — a strict recursive-descent parser used by tests and by
//!   consumers of `BENCH_*.json` artifacts.
//!
//! The [`ToJson`] trait is this module's stand-in for `serde::Serialize`:
//! telemetry types implement it to describe their JSON shape.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (serialized from `f64`; integers print without a dot).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Value)>),
}

/// Types that can describe themselves as a [`Value`].
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Num(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Value {
        Value::Num(*self as f64)
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> Value {
        Value::Num(*self as f64)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Value {
        Value::Num(*self as f64)
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Value {
        Value::Num(*self as f64)
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl Value {
    /// An empty object, for builder-style construction with [`Value::field`].
    pub fn object() -> Value {
        Value::Obj(Vec::new())
    }

    /// Adds (or replaces) a field on an object; panics on non-objects.
    pub fn field(mut self, key: &str, value: impl ToJson) -> Value {
        match &mut self {
            Value::Obj(fields) => {
                let v = value.to_json();
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = v;
                } else {
                    fields.push((key.to_string(), v));
                }
                self
            }
            _ => panic!("Value::field called on a non-object"),
        }
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    /// Prints on one line with no spaces.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars stay on one line even in pretty mode;
                // nested structures get one element per line.
                let inline = indent.is_none()
                    || items
                        .iter()
                        .all(|v| !matches!(v, Value::Arr(_) | Value::Obj(_)));
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if inline && indent.is_some() {
                            out.push(' ');
                        }
                    }
                    if !inline {
                        newline_indent(out, indent.map(|d| d + 1));
                    }
                    v.write(out, if inline { None } else { indent.map(|d| d + 1) });
                }
                if !inline {
                    newline_indent(out, indent);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|d| d + 1));
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent.map(|d| d + 1));
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the least-bad encoding.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (strict: no trailing garbage).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        let mut seen: BTreeMap<String, ()> = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if seen.insert(key.clone(), ()).is_some() {
                return Err(self.err(&format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our own
                            // output; reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("non-scalar \\u escape"))?;
                            s.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-sync to the char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let v = Value::object()
            .field("name", "azul")
            .field("tiles", 64u64)
            .field("ratio", 0.5)
            .field("tags", vec!["a".to_string(), "b".to_string()]);
        assert_eq!(v.get("name").and_then(Value::as_str), Some("azul"));
        assert_eq!(v.get("tiles").and_then(Value::as_u64), Some(64));
        assert_eq!(
            v.get("tags").and_then(Value::as_arr).map(<[Value]>::len),
            Some(2)
        );
    }

    #[test]
    fn roundtrip_pretty_and_compact() {
        let v = Value::object()
            .field("s", "quote \" backslash \\ newline \n unicode é")
            .field("n", -12.25)
            .field("i", 42u64)
            .field("null", Value::Null)
            .field("arr", Value::Arr(vec![Value::Bool(true), Value::Num(3.0)]))
            .field("nested", Value::object().field("k", 1u64));
        for text in [v.to_string_pretty(), v.to_string_compact()] {
            assert_eq!(parse(&text).unwrap(), v, "failed on {text}");
        }
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Value::Num(3.0).to_string_compact(), "3");
        assert_eq!(Value::Num(3.5).to_string_compact(), "3.5");
        assert_eq!(Value::Num(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(
            parse("{\"a\":1,\"a\":2}").is_err(),
            "duplicate keys rejected"
        );
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parses_scientific_and_escapes() {
        let v = parse(r#"{"x": 1.5e3, "s": "aA\n"}"#).unwrap();
        assert_eq!(v.get("x").and_then(Value::as_f64), Some(1500.0));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("aA\n"));
    }
}
