//! Telemetry subsystem for the Azul reproduction.
//!
//! This crate is the observability layer shared by the simulator, the
//! mapping pipeline, and the CLI/bench drivers. It is dependency-free
//! (the build environment has no registry access) and deliberately
//! simulator-agnostic: `azul-sim` and friends convert their internal
//! statistics into the types here.
//!
//! The pieces:
//!
//! * [`span`] — a minimal tracing-style layer: RAII phase spans with
//!   wall-clock timing, optional simulated-cycle attribution, nesting,
//!   and pluggable subscribers ([`span::Collector`] accumulates records
//!   for report export, [`span::StderrSubscriber`] prints them live).
//!   When no subscriber is installed a span costs one atomic load.
//! * [`report`] — the [`report::TelemetryReport`] document: scenario
//!   metadata, phase spans, aggregate counters, per-PE and per-link
//!   detail, and per-iteration convergence samples, with JSON export.
//! * [`json`] — a small JSON document model, writer, and strict parser
//!   (the offline stand-in for `serde_json`).
//! * [`heatmap`] — terminal rendering of per-tile grids and residual
//!   convergence strips for `azul-report`.
//! * [`trace`] — deterministic simulated-time event tracing: compact
//!   per-cycle [`trace::TraceEvent`]s with category filtering and
//!   bounded deterministic sampling, exported as Chrome trace-event /
//!   Perfetto JSON ([`trace::chrome_trace_json`]) for `ui.perfetto.dev`.
//!
//! A typical producer:
//!
//! ```
//! use azul_telemetry::report::TelemetryReport;
//! use azul_telemetry::span::{self, Collector};
//!
//! let collector = Collector::install();
//! {
//!     let mut s = span::span("kernel/spmv");
//!     s.record_cycles(1_000);
//! }
//! let mut report = TelemetryReport::default();
//! report.scenario_field("matrix", "demo");
//! report.counter("cycles", 1_000);
//! report.absorb_spans(collector.drain());
//! span::uninstall();
//! let json = report.to_json().to_string_pretty();
//! assert!(json.contains("kernel/spmv"));
//! ```

#![forbid(unsafe_code)]

pub mod heatmap;
pub mod json;
pub mod report;
pub mod span;
pub mod trace;

pub use report::TelemetryReport;
