//! Terminal heatmap rendering for per-tile quantities.
//!
//! Renders a [`GridF64`](crate::report::GridF64) — one value per tile of
//! the PE grid — as an ASCII intensity map with a scale legend, suitable
//! for dumping to a terminal from `azul-report`. Cells map linearly from
//! `[min, max]` onto a ten-step density ramp; each cell prints two
//! characters wide so the output is roughly square on common fonts.

use crate::report::GridF64;

/// Density ramp, light to dark.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders `grid` with a `title` line and a min/mean/max legend.
///
/// `unit` labels the legend values (e.g. `"ops/cycle"`, `"flits"`).
pub fn render(grid: &GridF64, title: &str, unit: &str) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if grid.values.is_empty() || grid.width == 0 || grid.height == 0 {
        out.push_str("  (empty grid)\n");
        return out;
    }

    let min = grid.values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = grid
        .values
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let mean = grid.values.iter().sum::<f64>() / grid.values.len() as f64;
    let span = (max - min).max(f64::MIN_POSITIVE);

    // Column header: tens digit only when the grid is wide.
    out.push_str("    +");
    out.push_str(&"--".repeat(grid.width));
    out.push_str("+\n");
    for y in 0..grid.height {
        out.push_str(&format!("{y:>3} |"));
        for x in 0..grid.width {
            let v = grid.values[y * grid.width + x];
            let norm = ((v - min) / span).clamp(0.0, 1.0);
            let idx = (norm * (RAMP.len() - 1) as f64).round() as usize;
            let c = RAMP[idx] as char;
            out.push(c);
            out.push(c);
        }
        out.push_str("|\n");
    }
    out.push_str("    +");
    out.push_str(&"--".repeat(grid.width));
    out.push_str("+\n");
    out.push_str(&format!(
        "    min {min:.4} | mean {mean:.4} | max {max:.4} {unit}   scale: '{}' -> '{}'\n",
        RAMP[0] as char,
        RAMP[RAMP.len() - 1] as char
    ));
    out
}

/// Renders a sparkline-style residual-convergence strip: one character
/// per iteration, height mapped from `log10(residual)`.
pub fn render_convergence(residuals: &[f64], title: &str) -> String {
    const BARS: &[char] = &['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if residuals.is_empty() {
        out.push_str("  (no iterations)\n");
        return out;
    }
    let logs: Vec<f64> = residuals
        .iter()
        .map(|&r| r.max(f64::MIN_POSITIVE).log10())
        .collect();
    let min = logs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = logs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(f64::MIN_POSITIVE);
    out.push_str("  ");
    for &l in &logs {
        let norm = (l - min) / span;
        let idx = (norm * (BARS.len() - 1) as f64).round() as usize;
        out.push(BARS[idx]);
    }
    out.push('\n');
    out.push_str(&format!(
        "  {} iterations, residual {:.3e} -> {:.3e}\n",
        residuals.len(),
        residuals.first().unwrap(),
        residuals.last().unwrap()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_cells_with_legend() {
        let grid = GridF64 {
            width: 4,
            height: 2,
            values: (0..8).map(|i| i as f64).collect(),
        };
        let s = render(&grid, "utilization", "ops/cycle");
        assert!(s.starts_with("utilization\n"));
        // 2 data rows, each 4 cells * 2 chars wide.
        let rows: Vec<&str> = s
            .lines()
            .filter(|l| l.contains('|') && !l.contains("mean"))
            .collect();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].contains("  "), "min cell renders as spaces");
        assert!(rows[1].ends_with("@@|"), "max cell renders as '@'");
        assert!(s.contains("min 0.0000"));
        assert!(s.contains("max 7.0000 ops/cycle"));
    }

    #[test]
    fn uniform_grid_does_not_divide_by_zero() {
        let grid = GridF64 {
            width: 2,
            height: 2,
            values: vec![3.0; 4],
        };
        let s = render(&grid, "flat", "x");
        assert!(s.contains("min 3.0000 | mean 3.0000 | max 3.0000"));
    }

    #[test]
    fn convergence_strip_has_one_char_per_iteration() {
        let residuals = vec![1.0, 0.1, 0.01, 1e-6];
        let s = render_convergence(&residuals, "pcg residual");
        let strip = s.lines().nth(1).unwrap().trim();
        assert_eq!(strip.chars().count(), residuals.len());
        assert!(s.contains("4 iterations"));
    }

    #[test]
    fn empty_inputs_render_placeholders() {
        let grid = GridF64 {
            width: 0,
            height: 0,
            values: vec![],
        };
        assert!(render(&grid, "t", "u").contains("(empty grid)"));
        assert!(render_convergence(&[], "t").contains("(no iterations)"));
    }
}
