//! The exportable telemetry report.
//!
//! [`TelemetryReport`] is the single document a simulation scenario
//! produces: scenario identification, phase spans (from
//! [`crate::span`]), aggregate kernel counters, per-PE and per-link
//! detail, and the solver convergence history. It serializes to JSON via
//! [`TelemetryReport::to_json`] (see [`crate::json`]) and feeds the
//! terminal heatmaps in [`crate::heatmap`].
//!
//! The report is deliberately simulator-agnostic: `azul-sim` converts
//! its `KernelStats`/`PeStats`/`LinkStats` into these types, and
//! anything that can name its phases and counters can produce one.

use crate::json::{ToJson, Value};
use crate::span::SpanRecord;

/// Operation-class labels, index-aligned with the simulator's op table.
pub const OP_NAMES: [&str; 4] = ["fmac", "add", "mul", "send"];

/// Outgoing-link direction labels, index-aligned with the simulator's
/// router direction indices (`PORT_E`/`PORT_W`/`PORT_N`/`PORT_S`).
pub const LINK_DIRS: [&str; 4] = ["east", "west", "north", "south"];

/// A row-major `height x width` grid of per-tile values.
#[derive(Debug, Clone, PartialEq)]
pub struct GridF64 {
    /// Tiles per row.
    pub width: usize,
    /// Rows.
    pub height: usize,
    /// `values[y * width + x]` is the tile at `(x, y)`.
    pub values: Vec<f64>,
}

impl GridF64 {
    /// An all-zero grid.
    pub fn zeros(width: usize, height: usize) -> GridF64 {
        GridF64 {
            width,
            height,
            values: vec![0.0; width * height],
        }
    }
}

impl ToJson for GridF64 {
    fn to_json(&self) -> Value {
        Value::object()
            .field("width", self.width)
            .field("height", self.height)
            .field("values", &self.values)
    }
}

/// One closed phase span, flattened for the report.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpan {
    /// Phase name, e.g. `"mapping"` or `"kernel/spmv"`.
    pub name: String,
    /// Nesting depth (0 = top level).
    pub depth: usize,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Simulated cycles attributed to the phase, if any.
    pub cycles: Option<u64>,
}

impl From<SpanRecord> for PhaseSpan {
    fn from(r: SpanRecord) -> Self {
        PhaseSpan {
            wall_ms: r.wall_ms(),
            name: r.name,
            depth: r.depth,
            cycles: r.cycles,
        }
    }
}

impl ToJson for PhaseSpan {
    fn to_json(&self) -> Value {
        Value::object()
            .field("name", &self.name)
            .field("depth", self.depth)
            .field("wall_ms", self.wall_ms)
            .field("cycles", self.cycles)
    }
}

/// Per-PE counters for one tile.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PeEntry {
    /// Linear tile id.
    pub tile: u32,
    /// Tile x coordinate.
    pub x: u32,
    /// Tile y coordinate.
    pub y: u32,
    /// Issued ops by class, indexed as [`OP_NAMES`].
    pub ops: [u64; 4],
    /// Cycles stalled on backpressure.
    pub stall_cycles: u64,
    /// Cycles active but with nothing to issue.
    pub idle_cycles: u64,
    /// Operand SRAM reads.
    pub sram_reads: u64,
    /// Read-modify-write accumulator updates.
    pub accum_rmws: u64,
    /// Message-buffer overflows to SRAM.
    pub spills: u64,
    /// Message-queue occupancy high-water mark.
    pub msg_queue_hwm: u64,
}

impl PeEntry {
    /// Total issued ops across all classes.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().sum()
    }
}

impl ToJson for PeEntry {
    fn to_json(&self) -> Value {
        let mut ops = Value::object();
        for (name, count) in OP_NAMES.iter().zip(self.ops) {
            ops = ops.field(name, count);
        }
        Value::object()
            .field("tile", self.tile)
            .field("x", self.x)
            .field("y", self.y)
            .field("ops", ops)
            .field("stall_cycles", self.stall_cycles)
            .field("idle_cycles", self.idle_cycles)
            .field("sram_reads", self.sram_reads)
            .field("accum_rmws", self.accum_rmws)
            .field("spills", self.spills)
            .field("msg_queue_hwm", self.msg_queue_hwm)
    }
}

/// Per-router link counters for one tile.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkEntry {
    /// Linear tile id of the router.
    pub tile: u32,
    /// Tile x coordinate.
    pub x: u32,
    /// Tile y coordinate.
    pub y: u32,
    /// Flits sent on each outgoing link, indexed as [`LINK_DIRS`].
    pub out: [u64; 4],
    /// Flits that traversed this router (any port).
    pub router_traversals: u64,
}

impl LinkEntry {
    /// Total outgoing flits across the four links.
    pub fn total_out(&self) -> u64 {
        self.out.iter().sum()
    }
}

impl ToJson for LinkEntry {
    fn to_json(&self) -> Value {
        let mut out = Value::object();
        for (dir, count) in LINK_DIRS.iter().zip(self.out) {
            out = out.field(dir, count);
        }
        Value::object()
            .field("tile", self.tile)
            .field("x", self.x)
            .field("y", self.y)
            .field("out", out)
            .field("router_traversals", self.router_traversals)
    }
}

/// One solver iteration's telemetry: the residual plus what the
/// iteration cost, as deltas against the previous iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationSample {
    /// Iteration number (1-based, matching solver reporting).
    pub iteration: usize,
    /// Preconditioned/true residual norm after the iteration.
    pub residual: f64,
    /// Simulated cycles this iteration.
    pub cycles: u64,
    /// Floating-point operations this iteration.
    pub flops: u64,
    /// Messages injected this iteration.
    pub messages: u64,
    /// Link activations (flit-hops) this iteration.
    pub link_activations: u64,
}

impl ToJson for IterationSample {
    fn to_json(&self) -> Value {
        Value::object()
            .field("iteration", self.iteration)
            .field("residual", self.residual)
            .field("cycles", self.cycles)
            .field("flops", self.flops)
            .field("messages", self.messages)
            .field("link_activations", self.link_activations)
    }
}

/// One injected-fault journal entry: what fired, when (global simulated
/// cycle across all kernels of the solve), and whether it actually
/// landed on live state.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSample {
    /// Global cycle (across kernels) the event fired at.
    pub at_cycle: u64,
    /// Fault class, e.g. `"sram_bit_flip"` or `"link_down"`.
    pub kind: String,
    /// Target tile.
    pub tile: u32,
    /// Whether the fault was applied (false: target out of range or
    /// already idle).
    pub applied: bool,
    /// Human-readable detail (e.g. the flipped value before/after).
    pub note: String,
}

impl ToJson for FaultSample {
    fn to_json(&self) -> Value {
        Value::object()
            .field("at_cycle", self.at_cycle)
            .field("kind", &self.kind)
            .field("tile", self.tile)
            .field("applied", self.applied)
            .field("note", &self.note)
    }
}

/// One executed checkpoint rollback.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoverySample {
    /// Solver iteration the anomaly was detected at.
    pub iteration: usize,
    /// Iteration whose checkpoint was restored.
    pub restored_iteration: usize,
    /// What triggered the rollback.
    pub reason: String,
}

impl ToJson for RecoverySample {
    fn to_json(&self) -> Value {
        Value::object()
            .field("iteration", self.iteration)
            .field("restored_iteration", self.restored_iteration)
            .field("reason", &self.reason)
    }
}

/// Audit record of one runtime-invariant rule (schema v3): how many
/// times the cycle-level machine evaluated it and how many violations it
/// observed. A completed run always reports zero violations (a violation
/// aborts the solve with a structured error); a non-empty `detail`
/// carries the violation message of an aborted run.
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantSample {
    /// Rule name, e.g. `"flit-conservation"`.
    pub rule: String,
    /// Number of times the rule was evaluated.
    pub checks: u64,
    /// Number of violations observed (0 for completed runs).
    pub violations: u64,
    /// Violation detail; empty when nothing fired.
    pub detail: String,
}

impl ToJson for InvariantSample {
    fn to_json(&self) -> Value {
        Value::object()
            .field("rule", &self.rule)
            .field("checks", self.checks)
            .field("violations", self.violations)
            .field("detail", &self.detail)
    }
}

/// One supervised-solve escalation record: a single rung
/// transition on one of the supervisor's degradation ladders. The full
/// `supervisor` section replays the journey from the first configuration
/// attempted to the one that finally solved (or to exhaustion).
#[derive(Debug, Clone, PartialEq)]
pub struct EscalationSample {
    /// Which ladder moved: `"mapping"`, `"preconditioner"`, `"solver"`
    /// or `"grid"`.
    pub stage: String,
    /// What forced the move, e.g. `"capacity"`, `"factor-breakdown"`,
    /// `"stagnation"`, `"max-iters"`, `"budget"` or `"sim-error"`.
    pub trigger: String,
    /// Rung the attempt ran with.
    pub from: String,
    /// Rung the next attempt will run with.
    pub to: String,
    /// 1-based index of the failed attempt that caused this transition.
    pub attempt: usize,
    /// Simulated cycles the failed attempt consumed (0 when the failure
    /// happened before any kernel ran, e.g. a capacity rejection).
    pub cycles_spent: u64,
}

impl ToJson for EscalationSample {
    fn to_json(&self) -> Value {
        Value::object()
            .field("stage", &self.stage)
            .field("trigger", &self.trigger)
            .field("from", &self.from)
            .field("to", &self.to)
            .field("attempt", self.attempt)
            .field("cycles_spent", self.cycles_spent)
    }
}

/// Summary of the cycle-accurate event trace captured during a traced
/// run (schema v5). The events themselves are exported separately as a
/// Chrome trace-event document (see [`crate::trace`]); this section
/// records what was collected so a report alone shows whether (and how
/// completely) a run was traced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Category bitmask the run recorded (see [`crate::trace`] `CAT_*`).
    pub categories: u8,
    /// Per-kernel event capacity the sampler enforced (0 = unbounded).
    pub capacity: u64,
    /// Events retained after deterministic compaction.
    pub events: u64,
    /// Events dropped by the bounded-capacity compaction.
    pub dropped: u64,
    /// Retained kernel begin/end markers.
    pub kernel_events: u64,
    /// Retained PE op/wake events.
    pub pe_events: u64,
    /// Retained router enqueue/forward/retire events.
    pub router_events: u64,
    /// Retained fault-firing markers.
    pub fault_events: u64,
}

impl ToJson for TraceSummary {
    fn to_json(&self) -> Value {
        Value::object()
            .field("categories", u64::from(self.categories))
            .field("capacity", self.capacity)
            .field("events", self.events)
            .field("dropped", self.dropped)
            .field("kernel_events", self.kernel_events)
            .field("pe_events", self.pe_events)
            .field("router_events", self.router_events)
            .field("fault_events", self.fault_events)
    }
}

/// Per-request service journal of a solve-as-a-service run (schema v6).
/// One `ServeSummary` describes how the `azul-serve` front-end handled a
/// single [`SolveRequest`]: where it sat in the admission queue, whether
/// the prepare cache served it, how many service-level attempts ran and
/// on what deterministic backoff schedule, and the typed outcome.
///
/// Determinism contract: every field is a pure function of the request
/// and its admission position — wall-clock durations (queue wait in
/// seconds, backoff sleeps) are deliberately absent, following the
/// supervisor's `wall_timeout` precedent, so a request's journal is
/// byte-identical across worker-pool sizes and repeated runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeSummary {
    /// Caller-assigned request id.
    pub request_id: String,
    /// Requests admitted before this one (admission order, the
    /// deterministic stand-in for wall queue wait).
    pub queue_position: u64,
    /// How the prepare cache served the request: `"leader"` (this
    /// request computed the entry), `"shared"` (attached to another
    /// request's entry at admission — a hit or a joined single-flight),
    /// or `"none"` (never reached the cache, e.g. shed at admission).
    pub prepare: String,
    /// Service-level attempts executed (1 + retries; 0 when shed).
    pub attempts: u64,
    /// Backoff ticks slept before each retry, in order — the
    /// deterministic capped-exponential schedule actually used.
    pub backoff_ticks: Vec<u64>,
    /// Per-attempt simulated cycle budget the request ran under
    /// (`u64::MAX` = unbounded).
    pub cycle_budget: u64,
    /// Terminal outcome: `"success"`, `"queue-full"`, `"deadline"`,
    /// `"cancelled"`, `"shutdown"` or `"failed"`.
    pub outcome: String,
    /// Display of the terminal error (empty on success).
    pub error: String,
}

impl ToJson for ServeSummary {
    fn to_json(&self) -> Value {
        Value::object()
            .field("request_id", &self.request_id)
            .field("queue_position", self.queue_position)
            .field("prepare", &self.prepare)
            .field("attempts", self.attempts)
            .field("backoff_ticks", &self.backoff_ticks)
            .field("cycle_budget", self.cycle_budget)
            .field("outcome", &self.outcome)
            .field("error", &self.error)
    }
}

/// One detected integrity violation (schema v7): an ABFT kernel
/// checksum or true-residual audit that fired during the solve. A
/// violation is journaled even when the recovery ladder subsequently
/// cleared it, so the section records every detection, not just the
/// fatal ones.
#[derive(Debug, Clone, PartialEq)]
pub struct IntegrityViolationSample {
    /// Solver iteration the check fired at.
    pub iteration: usize,
    /// Check name: `"checksum_spmv"`, `"checksum_sptrsv"`,
    /// `"residual_drift"` or `"final_audit"`.
    pub check: String,
    /// Human-readable detail (gap vs. bound, residual magnitudes).
    pub detail: String,
}

impl ToJson for IntegrityViolationSample {
    fn to_json(&self) -> Value {
        Value::object()
            .field("iteration", self.iteration)
            .field("check", &self.check)
            .field("detail", &self.detail)
    }
}

/// One recursive-vs-true residual drift measurement (schema v7),
/// recorded by the periodic drift audit whether or not it violated the
/// drift envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftPoint {
    /// Solver iteration the audit ran at.
    pub iteration: usize,
    /// Recursively-updated residual norm the solver was tracking.
    pub recursive: f64,
    /// Explicitly recomputed true residual norm `‖b − A·x‖₂`.
    pub true_residual: f64,
}

impl ToJson for DriftPoint {
    fn to_json(&self) -> Value {
        Value::object()
            .field("iteration", self.iteration)
            .field("recursive", self.recursive)
            .field("true_residual", self.true_residual)
    }
}

/// Numerical-integrity audit of one run (schema v7): how many ABFT and
/// residual checks ran, every violation they detected, the drift
/// samples the periodic audit collected, prepare-artifact scrub
/// results, and the wrong-answer escape count (converged claimed with a
/// true residual above tolerance — always zero when the final audit is
/// armed). `None` / omitted when no integrity checking ran, so the
/// zero-integrity path emits byte-identical documents modulo the
/// schema version.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IntegritySummary {
    /// Integrity checks evaluated (checksum verifications plus drift
    /// and final audits).
    pub checks: u64,
    /// Detected violations, in detection order.
    pub violations: Vec<IntegrityViolationSample>,
    /// Recursive-vs-true residual drift samples, in iteration order.
    pub drift: Vec<DriftPoint>,
    /// Cached prepare-artifact checksum re-verifications performed.
    pub scrub_checks: u64,
    /// Cached prepare artifacts evicted after a checksum mismatch.
    pub scrub_evictions: u64,
    /// Wrong answers shipped: runs that declared convergence while the
    /// true residual exceeded tolerance. Zero whenever the final audit
    /// is armed.
    pub escapes: u64,
}

impl ToJson for IntegritySummary {
    fn to_json(&self) -> Value {
        Value::object()
            .field("checks", self.checks)
            .field("violations", &self.violations)
            .field("drift", &self.drift)
            .field("scrub_checks", self.scrub_checks)
            .field("scrub_evictions", self.scrub_evictions)
            .field("escapes", self.escapes)
    }
}

/// The complete telemetry document for one scenario run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryReport {
    /// Scenario identification: matrix, mapper, config, ... Values keep
    /// insertion order in the JSON output.
    pub scenario: Vec<(String, Value)>,
    /// Closed phase spans, in close order (children before parents).
    pub phases: Vec<PhaseSpan>,
    /// Aggregate kernel counters by name.
    pub counters: Vec<(String, u64)>,
    /// PE-grid width (tiles per row); 0 when no detail was collected.
    pub grid_width: usize,
    /// PE-grid height.
    pub grid_height: usize,
    /// Per-PE detail (empty unless detailed stats were enabled).
    pub pe: Vec<PeEntry>,
    /// Per-router link detail (empty unless detailed stats were enabled).
    pub links: Vec<LinkEntry>,
    /// Convergence history, one sample per solver iteration.
    pub convergence: Vec<IterationSample>,
    /// Injected-fault journal (empty for fault-free runs).
    pub faults: Vec<FaultSample>,
    /// Executed recoveries (empty when nothing rolled back).
    pub recoveries: Vec<RecoverySample>,
    /// Runtime-invariant audit, one entry per rule (empty when invariant
    /// checking was disabled).
    pub invariants: Vec<InvariantSample>,
    /// Supervised-solve escalation journal, one entry per degradation
    /// ladder transition (empty for unsupervised runs and for supervised
    /// runs whose first attempt succeeded).
    pub supervisor: Vec<EscalationSample>,
    /// Event-trace summary (`None` for untraced runs; the section is
    /// omitted from the JSON output when absent).
    pub trace: Option<TraceSummary>,
    /// Solve-as-a-service request journal (`None` outside `azul-serve`;
    /// the section is omitted from the JSON output when absent).
    pub serve: Option<ServeSummary>,
    /// Numerical-integrity audit (`None` when no integrity checking
    /// ran; the section is omitted from the JSON output when absent).
    pub integrity: Option<IntegritySummary>,
}

impl TelemetryReport {
    /// Schema version stamped into the JSON output. Version 2 added the
    /// `faults` and `recoveries` sections; version 3 added `invariants`;
    /// version 4 added the `supervisor` escalation journal; version 5
    /// added the optional `trace` event-trace summary; version 6 added
    /// the optional `serve` per-request service journal; version 7
    /// added the optional `integrity` numerical-integrity audit.
    pub const SCHEMA_VERSION: u32 = 7;

    /// Adds a scenario field.
    pub fn scenario_field(&mut self, key: &str, value: impl ToJson) {
        self.scenario.push((key.to_string(), value.to_json()));
    }

    /// Adds a named aggregate counter.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.counters.push((name.to_string(), value));
    }

    /// Looks up an aggregate counter by name.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Absorbs span records (e.g. from a drained
    /// [`Collector`](crate::span::Collector)) as phase spans.
    pub fn absorb_spans(&mut self, records: Vec<SpanRecord>) {
        self.phases.extend(records.into_iter().map(PhaseSpan::from));
    }

    /// Per-PE utilization grid: total ops issued by the tile divided by
    /// total kernel cycles (0 when cycles are unknown).
    pub fn pe_utilization_grid(&self) -> GridF64 {
        let cycles = self.counter_value("cycles").unwrap_or(0).max(1) as f64;
        let mut grid = GridF64::zeros(self.grid_width, self.grid_height);
        for pe in &self.pe {
            let (x, y) = (pe.x as usize, pe.y as usize);
            if x < grid.width && y < grid.height {
                grid.values[y * grid.width + x] = pe.total_ops() as f64 / cycles;
            }
        }
        grid
    }

    /// Per-tile outgoing link traffic grid (total flits over the four
    /// outgoing links of each router).
    pub fn link_traffic_grid(&self) -> GridF64 {
        let mut grid = GridF64::zeros(self.grid_width, self.grid_height);
        for link in &self.links {
            let (x, y) = (link.x as usize, link.y as usize);
            if x < grid.width && y < grid.height {
                grid.values[y * grid.width + x] = link.total_out() as f64;
            }
        }
        grid
    }

    /// Residual norms in iteration order.
    pub fn residual_history(&self) -> Vec<f64> {
        self.convergence.iter().map(|s| s.residual).collect()
    }

    /// Serializes the full report.
    pub fn to_json(&self) -> Value {
        let mut scenario = Value::object();
        for (k, v) in &self.scenario {
            scenario = scenario.field(k, v.clone());
        }
        let mut counters = Value::object();
        for (k, v) in &self.counters {
            counters = counters.field(k, *v);
        }
        let mut doc = Value::object()
            .field("schema_version", Self::SCHEMA_VERSION as u64)
            .field("scenario", scenario)
            .field("phases", &self.phases)
            .field("counters", counters)
            .field(
                "grid",
                Value::object()
                    .field("width", self.grid_width)
                    .field("height", self.grid_height),
            )
            .field("pe", &self.pe)
            .field("links", &self.links)
            .field("pe_utilization", self.pe_utilization_grid())
            .field("link_traffic", self.link_traffic_grid())
            .field("convergence", &self.convergence)
            .field("faults", &self.faults)
            .field("recoveries", &self.recoveries)
            .field("invariants", &self.invariants)
            .field("supervisor", &self.supervisor);
        if let Some(trace) = &self.trace {
            doc = doc.field("trace", trace);
        }
        if let Some(serve) = &self.serve {
            doc = doc.field("serve", serve);
        }
        if let Some(integrity) = &self.integrity {
            doc = doc.field("integrity", integrity);
        }
        doc
    }

    /// Writes pretty-printed JSON to `path`.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_string_pretty())
    }
}

impl ToJson for TelemetryReport {
    fn to_json(&self) -> Value {
        TelemetryReport::to_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_report() -> TelemetryReport {
        let mut report = TelemetryReport {
            grid_width: 2,
            grid_height: 2,
            ..Default::default()
        };
        report.scenario_field("matrix", "fem_mesh_3d");
        report.scenario_field("n", 100u64);
        report.counter("cycles", 1000);
        report.counter("messages", 42);
        for tile in 0..4u32 {
            report.pe.push(PeEntry {
                tile,
                x: tile % 2,
                y: tile / 2,
                ops: [tile as u64 * 10, 1, 2, 3],
                ..Default::default()
            });
            report.links.push(LinkEntry {
                tile,
                x: tile % 2,
                y: tile / 2,
                out: [tile as u64, 0, 1, 0],
                router_traversals: 5,
            });
        }
        report.convergence.push(IterationSample {
            iteration: 1,
            residual: 0.5,
            cycles: 500,
            flops: 100,
            messages: 20,
            link_activations: 60,
        });
        report.phases.push(PhaseSpan {
            name: "mapping".into(),
            depth: 0,
            wall_ms: 1.5,
            cycles: None,
        });
        report
    }

    #[test]
    fn utilization_grid_reflects_ops_over_cycles() {
        let report = sample_report();
        let grid = report.pe_utilization_grid();
        assert_eq!(grid.width, 2);
        // Tile 3 at (1,1): ops 30+1+2+3 = 36 over 1000 cycles.
        assert!((grid.values[3] - 0.036).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrips_through_parser() {
        let report = sample_report();
        let text = report.to_json().to_string_pretty();
        let v = json::parse(&text).expect("valid JSON");
        assert_eq!(
            v.get("schema_version").and_then(Value::as_u64),
            Some(u64::from(TelemetryReport::SCHEMA_VERSION))
        );
        assert_eq!(
            v.get("scenario")
                .and_then(|s| s.get("matrix"))
                .and_then(Value::as_str),
            Some("fem_mesh_3d")
        );
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("cycles"))
                .and_then(Value::as_u64),
            Some(1000)
        );
        assert_eq!(
            v.get("pe").and_then(Value::as_arr).map(<[Value]>::len),
            Some(4)
        );
        let conv = v.get("convergence").and_then(Value::as_arr).unwrap();
        assert_eq!(conv[0].get("residual").and_then(Value::as_f64), Some(0.5));
        let util = v.get("pe_utilization").unwrap();
        assert_eq!(util.get("width").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn supervisor_journal_serializes_in_order() {
        let mut report = sample_report();
        report.supervisor.push(EscalationSample {
            stage: "mapping".into(),
            trigger: "capacity".into(),
            from: "azul".into(),
            to: "block".into(),
            attempt: 1,
            cycles_spent: 0,
        });
        report.supervisor.push(EscalationSample {
            stage: "solver".into(),
            trigger: "stagnation".into(),
            from: "pcg".into(),
            to: "bicgstab".into(),
            attempt: 2,
            cycles_spent: 1234,
        });
        let v = json::parse(&report.to_json().to_string_pretty()).expect("valid JSON");
        let sup = v.get("supervisor").and_then(Value::as_arr).unwrap();
        assert_eq!(sup.len(), 2);
        assert_eq!(sup[0].get("stage").and_then(Value::as_str), Some("mapping"));
        assert_eq!(sup[1].get("to").and_then(Value::as_str), Some("bicgstab"));
        assert_eq!(
            sup[1].get("cycles_spent").and_then(Value::as_u64),
            Some(1234)
        );
    }

    #[test]
    fn trace_section_is_omitted_until_filled() {
        let mut report = sample_report();
        let text = report.to_json().to_string_pretty();
        assert!(
            !text.contains("\"trace\""),
            "untraced reports carry no trace section"
        );
        report.trace = Some(TraceSummary {
            categories: 0x1f,
            capacity: 65_536,
            events: 120,
            dropped: 3,
            kernel_events: 2,
            pe_events: 80,
            router_events: 37,
            fault_events: 1,
        });
        let v = json::parse(&report.to_json().to_string_pretty()).expect("valid JSON");
        let trace = v.get("trace").expect("trace section present");
        assert_eq!(trace.get("events").and_then(Value::as_u64), Some(120));
        assert_eq!(trace.get("dropped").and_then(Value::as_u64), Some(3));
        assert_eq!(trace.get("pe_events").and_then(Value::as_u64), Some(80));
        assert_eq!(trace.get("categories").and_then(Value::as_u64), Some(0x1f));
    }

    #[test]
    fn serve_section_is_omitted_until_filled() {
        let mut report = sample_report();
        let text = report.to_json().to_string_pretty();
        assert!(
            !text.contains("\"serve\""),
            "non-service reports carry no serve section"
        );
        report.serve = Some(ServeSummary {
            request_id: "req-7".into(),
            queue_position: 3,
            prepare: "shared".into(),
            attempts: 2,
            backoff_ticks: vec![1, 2],
            cycle_budget: 250_000,
            outcome: "failed".into(),
            error: "simulation failure: kernel deadlocked at cycle 9".into(),
        });
        let v = json::parse(&report.to_json().to_string_pretty()).expect("valid JSON");
        let serve = v.get("serve").expect("serve section present");
        assert_eq!(
            serve.get("request_id").and_then(Value::as_str),
            Some("req-7")
        );
        assert_eq!(serve.get("queue_position").and_then(Value::as_u64), Some(3));
        assert_eq!(serve.get("prepare").and_then(Value::as_str), Some("shared"));
        let ticks = serve.get("backoff_ticks").and_then(Value::as_arr).unwrap();
        assert_eq!(ticks.len(), 2);
        assert_eq!(ticks[1].as_u64(), Some(2));
        assert_eq!(serve.get("outcome").and_then(Value::as_str), Some("failed"));
    }

    #[test]
    fn integrity_section_is_omitted_until_filled() {
        let mut report = sample_report();
        let text = report.to_json().to_string_pretty();
        assert!(
            !text.contains("\"integrity\""),
            "unchecked reports carry no integrity section"
        );
        report.integrity = Some(IntegritySummary {
            checks: 41,
            violations: vec![IntegrityViolationSample {
                iteration: 7,
                check: "checksum_spmv".into(),
                detail: "gap 3.2e-4 exceeds bound 1.1e-12".into(),
            }],
            drift: vec![DriftPoint {
                iteration: 16,
                recursive: 1e-5,
                true_residual: 1.05e-5,
            }],
            scrub_checks: 2,
            scrub_evictions: 1,
            escapes: 0,
        });
        let v = json::parse(&report.to_json().to_string_pretty()).expect("valid JSON");
        let integrity = v.get("integrity").expect("integrity section present");
        assert_eq!(integrity.get("checks").and_then(Value::as_u64), Some(41));
        let violations = integrity.get("violations").and_then(Value::as_arr).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(
            violations[0].get("check").and_then(Value::as_str),
            Some("checksum_spmv")
        );
        let drift = integrity.get("drift").and_then(Value::as_arr).unwrap();
        assert_eq!(drift[0].get("iteration").and_then(Value::as_u64), Some(16));
        assert_eq!(
            integrity.get("scrub_evictions").and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(integrity.get("escapes").and_then(Value::as_u64), Some(0));
    }

    #[test]
    fn counter_lookup_and_residuals() {
        let report = sample_report();
        assert_eq!(report.counter_value("messages"), Some(42));
        assert_eq!(report.counter_value("nope"), None);
        assert_eq!(report.residual_history(), vec![0.5]);
    }
}
