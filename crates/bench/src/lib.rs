//! Shared harness for the per-figure/table benchmark targets.
//!
//! Every table and figure in the paper's evaluation has a bench target
//! under `crates/bench/benches/` (see DESIGN.md §4 for the index). Each
//! target prints the same rows/series the paper reports, annotated with
//! the paper's own numbers where it states them. `EXPERIMENTS.md` records
//! the paper-vs-measured comparison.
//!
//! # Scaling knobs
//!
//! The paper simulates 4096 tiles on multi-million-nonzero matrices; a
//! 1-core software simulation scales both down together (DESIGN.md §3).
//! Environment variables adjust the default scale:
//!
//! * `AZUL_BENCH_GRID` — torus side (default 16, i.e. 256 tiles);
//! * `AZUL_BENCH_SCALE` — `tiny` | `small` | `medium` (default `small`);
//! * `AZUL_BENCH_FAST` — set to use the fast partitioner preset.

#![forbid(unsafe_code)]

use azul_mapping::strategies::{AzulMapper, BlockMapper, Mapper, RoundRobinMapper, SparsePMapper};
use azul_mapping::{Placement, TileGrid};
use azul_sim::config::SimConfig;
use azul_sim::pcg::{PcgSim, PcgSimConfig, PcgSimReport};
use azul_sparse::coloring::{color_and_permute, ColoringStrategy};
use azul_sparse::suite::{MatrixSpec, Scale};
use azul_sparse::Csr;
use azul_telemetry::json::ToJson;
use azul_telemetry::TelemetryReport;

/// Benchmark context: grid, scale and run lengths.
#[derive(Debug, Clone)]
pub struct BenchCtx {
    /// The torus.
    pub grid: TileGrid,
    /// Matrix scale.
    pub scale: Scale,
    /// Cycle-timed PCG iterations per configuration.
    pub timed_iters: usize,
    /// Whether to use the fast partitioner preset.
    pub fast_mapper: bool,
}

impl BenchCtx {
    /// Reads the context from the environment (see crate docs).
    pub fn from_env() -> Self {
        let side: usize = std::env::var("AZUL_BENCH_GRID")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(16);
        let scale = match std::env::var("AZUL_BENCH_SCALE").as_deref() {
            Ok("tiny") => Scale::Tiny,
            Ok("medium") => Scale::Medium,
            _ => Scale::Small,
        };
        BenchCtx {
            grid: TileGrid::square(side),
            scale,
            timed_iters: 2,
            fast_mapper: std::env::var("AZUL_BENCH_FAST").is_ok(),
        }
    }

    /// The default Azul mapper under this context.
    pub fn azul_mapper(&self) -> AzulMapper {
        AzulMapper {
            fast: self.fast_mapper,
            ..Default::default()
        }
    }

    /// PCG run configuration for throughput measurements: enough
    /// iterations to reach steady state, no need to converge.
    pub fn pcg_cfg(&self) -> PcgSimConfig {
        PcgSimConfig {
            tol: 1e-12,
            max_iters: self.timed_iters + 1,
            timed_iterations: self.timed_iters,
            ..Default::default()
        }
    }
}

/// A suite matrix prepared for benchmarking: colored + permuted, with a
/// deterministic right-hand side.
pub struct BenchMatrix {
    /// Paper matrix name.
    pub name: &'static str,
    /// The synthetic analog spec.
    pub spec: MatrixSpec,
    /// The colored/permuted matrix (the form all paper results use).
    pub a: Csr,
    /// Right-hand side.
    pub b: Vec<f64>,
}

/// Builds and preprocesses one suite matrix.
pub fn prepare(spec: MatrixSpec, scale: Scale) -> BenchMatrix {
    let raw = spec.build(scale);
    let (a, _, _) = color_and_permute(&raw, ColoringStrategy::LargestDegreeFirst);
    let n = a.rows();
    let b: Vec<f64> = (0..n)
        .map(|i| ((i * 31 % 17) as f64) / 17.0 + 0.25)
        .collect();
    BenchMatrix {
        name: spec.name,
        spec,
        a,
        b,
    }
}

/// Builds the whole representative set (Figs. 1/3/9/10/11, Table I).
pub fn representative(ctx: &BenchCtx) -> Vec<BenchMatrix> {
    azul_sparse::suite::representative()
        .into_iter()
        .map(|s| prepare(s, ctx.scale))
        .collect()
}

/// Builds the full 20-matrix suite (Figs. 20-24).
pub fn full_suite(ctx: &BenchCtx) -> Vec<BenchMatrix> {
    azul_sparse::suite::suite_4k()
        .into_iter()
        .map(|s| prepare(s, ctx.scale))
        .collect()
}

/// The named mapping strategies of the paper's comparison (Sec. VI-C).
pub fn all_mappers(ctx: &BenchCtx) -> Vec<(&'static str, Box<dyn Mapper>)> {
    vec![
        ("round-robin", Box::new(RoundRobinMapper)),
        ("block", Box::new(BlockMapper)),
        ("sparsep", Box::new(SparsePMapper)),
        ("azul", Box::new(ctx.azul_mapper())),
    ]
}

/// Runs PCG on the simulated accelerator for a prepared matrix.
pub fn run_pcg(
    m: &BenchMatrix,
    placement: &Placement,
    sim: &SimConfig,
    ctx: &BenchCtx,
) -> PcgSimReport {
    let pcg = PcgSim::build(&m.a, placement, sim).expect("IC(0) succeeds on suite matrices");
    pcg.run(&m.b, &ctx.pcg_cfg())
}

/// Converts one bench scenario's PCG results into a telemetry report
/// (scenario identification, aggregate counters, per-PE/per-link detail
/// when `cfg.detailed_stats` was on, and the convergence history).
pub fn telemetry_report(m: &BenchMatrix, cfg: &SimConfig, rep: &PcgSimReport) -> TelemetryReport {
    let mut report = TelemetryReport::default();
    report.scenario_field("matrix", m.name);
    report.scenario_field("n", m.a.rows() as u64);
    report.scenario_field("nnz", m.a.nnz() as u64);
    azul_sim::telemetry::describe_config(&mut report, cfg);
    azul_sim::telemetry::fill_report(&mut report, cfg, &rep.stats);
    report.convergence = rep.convergence.clone();
    report
}

/// Writes per-scenario telemetry reports as one `BENCH_<figure>.json`
/// artifact (a JSON array of report documents). The destination
/// directory comes from `AZUL_BENCH_REPORT_DIR` (default: current
/// directory). Returns the written path.
///
/// # Errors
///
/// Propagates filesystem errors from the write.
pub fn write_bench_artifact(
    figure: &str,
    reports: &[TelemetryReport],
) -> std::io::Result<std::path::PathBuf> {
    let dir = std::env::var("AZUL_BENCH_REPORT_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{figure}.json"));
    std::fs::write(&path, reports.to_json().to_string_pretty())?;
    Ok(path)
}

/// Geometric mean of positive values.
pub fn gmean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// The GPU-model overhead scale for a scaled-down analog: fixed costs
/// (kernel launches, syncs) shrink with the matrix so they keep the same
/// relative weight as at paper scale.
pub fn gpu_overhead_scale(m: &BenchMatrix) -> f64 {
    (m.a.nnz() as f64 / m.spec.paper_nnz).min(1.0)
}

/// Prints a standard bench header.
pub fn header(title: &str, paper_note: &str) {
    println!();
    println!("=== {title} ===");
    if !paper_note.is_empty() {
        println!("paper: {paper_note}");
    }
}

/// Formats a row of label + values.
pub fn row(label: &str, cells: &[String]) {
    print!("{label:<14}");
    for c in cells {
        print!(" {c:>12}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_of_constants() {
        assert!((gmean(&[4.0, 4.0, 4.0]) - 4.0).abs() < 1e-12);
        assert!((gmean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert_eq!(gmean(&[]), 0.0);
    }

    #[test]
    fn ctx_defaults() {
        let ctx = BenchCtx::from_env();
        assert!(ctx.grid.num_tiles() > 0);
        assert!(ctx.timed_iters >= 1);
    }

    #[test]
    fn prepare_builds_permuted_spd() {
        let spec = azul_sparse::suite::by_name("thermal2").unwrap();
        let m = prepare(spec, Scale::Tiny);
        assert!(m.a.is_symmetric(1e-9));
        assert_eq!(m.b.len(), m.a.rows());
    }

    #[test]
    fn overhead_scale_below_one() {
        let spec = azul_sparse::suite::by_name("consph").unwrap();
        let m = prepare(spec, Scale::Tiny);
        let s = gpu_overhead_scale(&m);
        assert!(s > 0.0 && s < 1.0);
    }
}
