//! Fig. 7: GPU speedup from graph coloring + permutation.
//!
//! Paper: at least 2x, often much larger, on the five representative
//! matrices shown (crankseg_1, shipsec1, consph, thermal2, apache2).

use azul_bench::{gpu_overhead_scale, header, prepare, row, BenchCtx};
use azul_models::gpu::{GpuModel, GpuWorkload};
use azul_sparse::suite;

fn main() {
    let ctx = BenchCtx::from_env();
    header(
        "Fig. 7 — GPU runtime: original vs colored+permuted",
        "speedups of >= 2x from permutation",
    );
    row(
        "matrix",
        &["orig (norm)".into(), "permuted".into(), "speedup".into()],
    );
    // Fig. 7 omits m_t1; match its matrix list.
    for spec in suite::representative()
        .into_iter()
        .filter(|s| s.name != "m_t1")
    {
        let m = prepare(spec, ctx.scale);
        let raw = spec.build(ctx.scale);
        let model = GpuModel::with_overhead_scale(gpu_overhead_scale(&m));
        let t_orig = model
            .pcg_iteration_time(&GpuWorkload::from_matrix(&raw))
            .total_s();
        let t_perm = model
            .pcg_iteration_time(&GpuWorkload::from_matrix(&m.a))
            .total_s();
        let speedup = t_orig / t_perm;
        row(
            spec.name,
            &[
                "1.00".into(),
                format!("{:.2}", t_perm / t_orig),
                format!("{speedup:.1}x"),
            ],
        );
        assert!(speedup > 1.0, "{}: coloring should never hurt", spec.name);
    }
}
