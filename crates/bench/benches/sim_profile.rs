//! Host-side self-profile: where does the simulator's own wall time go?
//!
//! The companion of `sim_perf`: that bench measures *how fast* the tick
//! engine runs, this one measures *where the time goes* inside it —
//! router arbitration, PE execute, the barrier/commit phase,
//! fast-forward scanning, and stats sampling, attributed via the
//! [`azul_sim::profile`] probes (the only sanctioned wall-clock use in
//! the sim crate; see the `wall-clock-in-sim` lint rule).
//!
//! Runs a full PCG solve with `threads = 1` so the inner probe scopes
//! nest strictly inside the `tick_loop` scope and shares are
//! well-defined, then writes `BENCH_sim_profile.json` with one
//! `share_ppm_<component>` field per component plus the unattributed
//! remainder. The shares must cover the tick loop: their sum is
//! asserted to land within 1% of 100%.

use azul_bench::{header, prepare, row, write_bench_artifact, BenchCtx};
use azul_mapping::strategies::Mapper;
use azul_sim::config::SimConfig;
use azul_sim::pcg::PcgSim;
use azul_sim::profile::{self, Component, ALL};
use azul_sparse::suite;
use azul_telemetry::TelemetryReport;

fn main() {
    let ctx = BenchCtx::from_env();
    header(
        "sim_profile — host wall-time attribution of the tick engine",
        "",
    );
    let m = prepare(suite::by_name("thermal2").unwrap(), ctx.scale);
    let placement = ctx.azul_mapper().map(&m.a, ctx.grid);

    // One worker: with a pool, shard workers run concurrently and their
    // probe times overlap the coordinator's, so "share of the tick
    // loop" would stop being a partition of anything.
    let mut cfg = SimConfig::azul(ctx.grid);
    cfg.threads = 1;
    // Fast-forward on, so its scanning cost shows up as a component
    // instead of hiding inside "other" idle ticks.
    cfg.fast_forward = true;
    let sim = PcgSim::build(&m.a, &placement, &cfg).expect("IC(0) succeeds on suite matrices");

    profile::reset();
    profile::enable();
    let rep = sim.run(&m.b, &ctx.pcg_cfg());
    profile::disable();
    let snap = profile::snapshot();

    assert!(
        snap.calls(Component::TickLoop) > 0,
        "the solve must have entered the tick loop"
    );

    row(
        "component",
        &["wall ms".into(), "calls".into(), "share".into()],
    );
    for &c in ALL.iter() {
        let share = if c == Component::TickLoop {
            "100.0%".to_string()
        } else {
            format!("{:.1}%", snap.share_ppm(c) as f64 / 10_000.0)
        };
        row(
            c.name(),
            &[
                format!("{:.2}", snap.wall_ns(c) as f64 / 1e6),
                format!("{}", snap.calls(c)),
                share,
            ],
        );
    }
    row(
        "other",
        &[
            String::new(),
            String::new(),
            format!("{:.1}%", snap.other_ppm() as f64 / 10_000.0),
        ],
    );

    // The inner components plus the unattributed remainder must cover
    // the tick loop. Probe overhead can push the measured sum slightly
    // past 100%; anything outside 1% means a probe is misplaced (e.g.
    // nested double-counting or a scope outside the loop).
    let inner: u64 = ALL
        .iter()
        .filter(|&&c| c != Component::TickLoop)
        .map(|&c| snap.share_ppm(c))
        .sum();
    let total_ppm = inner + snap.other_ppm();
    assert!(
        (990_000..=1_010_000).contains(&total_ppm),
        "component shares + remainder must cover the tick loop \
         (got {total_ppm} ppm)"
    );

    let mut doc = TelemetryReport::default();
    doc.scenario_field("bench", "sim_profile");
    doc.scenario_field("matrix", m.name);
    doc.scenario_field("n", m.a.rows() as u64);
    doc.scenario_field("nnz", m.a.nnz() as u64);
    doc.scenario_field("threads", 1u64);
    doc.scenario_field("total_cycles", rep.total_cycles);
    azul_sim::telemetry::describe_config(&mut doc, &cfg);
    for &c in ALL.iter() {
        doc.counter(&format!("profile_wall_ns_{}", c.name()), snap.wall_ns(c));
        doc.counter(&format!("profile_calls_{}", c.name()), snap.calls(c));
        if c != Component::TickLoop {
            doc.counter(&format!("share_ppm_{}", c.name()), snap.share_ppm(c));
        }
    }
    doc.counter("share_ppm_other", snap.other_ppm());
    doc.counter("share_ppm_total", total_ppm);

    match write_bench_artifact("sim_profile", &[doc]) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => println!("artifact write failed: {e}"),
    }
    println!(
        "headline: {} ppm of tick-loop wall time attributed ({} components + other)",
        total_ppm,
        ALL.len() - 1
    );
}
