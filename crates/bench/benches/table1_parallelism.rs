//! Table I: maximum available parallelism (total work / critical path)
//! for SpMV and SpTRSV, with SpTRSV shown before and after the graph-
//! coloring permutation.
//!
//! Paper shape: SpMV parallelism is enormous (1e5-1e6); original SpTRSV
//! parallelism is tiny (600-2600); permutation buys 1-3 orders of
//! magnitude but remains far below SpMV.

use azul_bench::{header, row, BenchCtx};
use azul_sparse::coloring::{color_and_permute, ColoringStrategy};
use azul_sparse::levels::{spmv_parallelism, sptrsv_parallelism};
use azul_sparse::suite;

fn main() {
    let ctx = BenchCtx::from_env();
    header(
        "Table I — available parallelism (work / critical path)",
        "e.g. crankseg_1: SpMV 884517, SpTRSV 657 -> 22409 permuted",
    );
    row(
        "matrix",
        &["SpMV".into(), "SpTRSV orig".into(), "SpTRSV perm".into()],
    );
    for spec in suite::representative() {
        let a = spec.build(ctx.scale);
        let spmv = spmv_parallelism(&a).parallelism();
        let orig = sptrsv_parallelism(&a.lower_triangle()).parallelism();
        let (pa, _, _) = color_and_permute(&a, ColoringStrategy::LargestDegreeFirst);
        let perm = sptrsv_parallelism(&pa.lower_triangle()).parallelism();
        row(
            spec.name,
            &[
                format!("{spmv:.0}"),
                format!("{orig:.0}"),
                format!("{perm:.0}"),
            ],
        );
        assert!(perm > orig, "coloring must increase SpTRSV parallelism");
        assert!(spmv > perm, "SpMV parallelism must stay the largest");
    }
}
