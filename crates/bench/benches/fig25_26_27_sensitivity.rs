//! Figs. 25, 26, 27: hardware-sensitivity studies on the representative
//! set, reusing one Azul mapping per matrix across all configurations.
//!
//! * Fig. 25 — NoC hop-latency sweep (1-4 cycles): paper sees ~-4% gmean
//!   throughput per extra cycle.
//! * Fig. 26 — SRAM access-latency sweep (1-4 cycles): ~-3% per cycle.
//! * Fig. 27 — multithreading on/off: ~1.5x from hiding dependence
//!   stalls.

use azul_bench::{gmean, header, representative, run_pcg, BenchCtx};
use azul_mapping::strategies::Mapper;
use azul_sim::config::SimConfig;

fn main() {
    let ctx = BenchCtx::from_env();
    let matrices = representative(&ctx);
    let placements: Vec<_> = matrices
        .iter()
        .map(|m| ctx.azul_mapper().map(&m.a, ctx.grid))
        .collect();

    let sweep = |mutate: &dyn Fn(&mut SimConfig)| -> f64 {
        let mut gf = Vec::new();
        for (m, p) in matrices.iter().zip(&placements) {
            let mut cfg = SimConfig::azul(ctx.grid);
            mutate(&mut cfg);
            gf.push(run_pcg(m, p, &cfg, &ctx).gflops);
        }
        gmean(&gf)
    };

    header(
        "Fig. 25 — NoC hop-latency sweep",
        "~-4% gmean throughput per extra cycle/hop",
    );
    let mut hop_results = Vec::new();
    for hop in 1..=4u32 {
        let g = sweep(&|c| c.hop_latency = hop);
        println!("  hop latency {hop} cyc: gmean {g:.1} GFLOP/s");
        hop_results.push(g);
    }
    assert!(
        hop_results[3] <= hop_results[0],
        "higher hop latency cannot be faster"
    );
    assert!(
        hop_results[3] > 0.5 * hop_results[0],
        "Azul is barely latency sensitive (paper: a few % per cycle)"
    );

    header(
        "Fig. 26 — SRAM access-latency sweep",
        "~-3% gmean throughput per extra cycle",
    );
    let mut sram_results = Vec::new();
    for lat in 1..=4u32 {
        let g = sweep(&|c| c.sram_latency = lat);
        println!("  SRAM latency {lat} cyc: gmean {g:.1} GFLOP/s");
        sram_results.push(g);
    }
    assert!(sram_results[3] <= sram_results[0]);
    assert!(
        sram_results[3] > 0.5 * sram_results[0],
        "Azul is barely SRAM-latency sensitive"
    );

    header(
        "Fig. 27 — fine-grained multithreading",
        "multithreading provides ~1.5x over single-threaded PEs",
    );
    let multi = sweep(&|_| {});
    let single = sweep(&|c| c.contexts = 1);
    println!("  multithreaded: gmean {multi:.1} GFLOP/s");
    println!("  single-thread: gmean {single:.1} GFLOP/s");
    println!("  speedup: {:.2}x (paper: 1.5x)", multi / single);
    assert!(multi >= single, "multithreading should not hurt");
}
