//! Engine throughput: wall-clock cost of the cycle-accurate simulation
//! itself across the host-side engine knobs (worker threads ×
//! idle-cycle fast-forward).
//!
//! Unlike the `fig*`/`table*` targets, this bench measures the
//! *simulator*, not the simulated accelerator: simulated cycles per
//! host second for the same scenarios under every engine
//! configuration. The knobs must be performance-only — each run's
//! telemetry is re-serialized and compared byte-for-byte against the
//! `threads=1, fast_forward=off` baseline; any divergence aborts the
//! bench.
//!
//! Two sections:
//!
//! 1. **PCG engine matrix** — a full solve across (threads ×
//!    fast_forward). Thread scaling is bounded by host cores (the pool
//!    is capped at `available_parallelism`, so on a 1-core runner the
//!    thread axis measures sharding overhead only).
//! 2. **SpTRSV-heavy kernel** — a serial tridiagonal chain across the
//!    full grid, the dependence-limited tail the fast-forward path
//!    exists for: nearly every tile is idle nearly every cycle, so the
//!    clock can leap between events. The headline is the single-worker
//!    fast-forward speedup here.

use azul_bench::{header, prepare, row, telemetry_report, write_bench_artifact, BenchCtx};
use azul_mapping::strategies::{Mapper, RoundRobinMapper};
use azul_mapping::{Placement, TileGrid};
use azul_sim::config::SimConfig;
use azul_sim::machine::run_kernel;
use azul_sim::pcg::PcgSim;
use azul_sim::program::Program;
use azul_sparse::suite::Scale;
use azul_sparse::{generate, suite};
use azul_telemetry::TelemetryReport;
use std::time::Instant;

/// Engine configurations under test: (worker threads, fast_forward).
const CONFIGS: [(usize, bool); 6] = [
    (1, false),
    (1, true),
    (2, false),
    (2, true),
    (4, false),
    (4, true),
];

fn main() {
    let ctx = BenchCtx::from_env();
    assert!(
        ctx.grid.num_tiles() >= 256,
        "sim_perf wants at least a 16x16 grid (got {} tiles)",
        ctx.grid.num_tiles()
    );
    // This bench is the zero-trace baseline of the observability layer:
    // event tracing is opt-in, so the default config must measure the
    // untraced fast path and every artifact row says so.
    assert!(
        SimConfig::azul(ctx.grid).trace.is_none(),
        "sim_perf must measure the untraced fast path"
    );
    let mut reports: Vec<TelemetryReport> = Vec::new();

    // Section 1: full PCG solves across the engine matrix.
    header(
        "sim_perf §1 — PCG engine throughput across (threads x fast_forward)",
        "",
    );
    row(
        "matrix t/ff",
        &CONFIGS
            .iter()
            .map(|&(t, ff)| format!("{}w {}", t, if ff { "ff" } else { "--" }))
            .collect::<Vec<_>>(),
    );
    for name in ["nd12k", "thermal2"] {
        let m = prepare(suite::by_name(name).unwrap(), ctx.scale);
        let placement = ctx.azul_mapper().map(&m.a, ctx.grid);
        let mut cells = Vec::new();
        let mut walls = Vec::new();
        let mut baseline_json = String::new();
        for &(threads, ff) in &CONFIGS {
            let mut cfg = SimConfig::azul(ctx.grid);
            cfg.threads = threads;
            cfg.fast_forward = ff;
            let sim = PcgSim::build(&m.a, &placement, &cfg).expect("IC(0) succeeds");
            let t0 = Instant::now();
            let rep = sim.run(&m.b, &ctx.pcg_cfg());
            let wall = t0.elapsed().as_secs_f64();
            // Self-check before annotating with host timings: every
            // engine configuration must produce byte-identical
            // telemetry. This is the bench-side guard behind the
            // determinism test suite.
            let mut doc = telemetry_report(&m, &cfg, &rep);
            let key = doc.to_json().to_string_pretty();
            if threads == 1 && !ff {
                baseline_json = key;
            } else {
                assert_eq!(
                    key, baseline_json,
                    "{name}: telemetry diverged at threads={threads} fast_forward={ff}"
                );
            }
            let mcps = rep.total_cycles as f64 / wall / 1.0e6;
            doc.scenario_field("section", "pcg");
            doc.scenario_field("tracing", false);
            doc.scenario_field("threads", threads as u64);
            doc.scenario_field("fast_forward", ff);
            doc.scenario_field("wall_seconds", wall);
            doc.scenario_field("sim_mcycles_per_sec", mcps);
            reports.push(doc);
            walls.push(wall);
            cells.push(format!("{mcps:.2} Mc/s"));
        }
        row(name, &cells);
        println!(
            "{name:<14} threads=4 vs threads=1: {:.2}x   ff vs base (1 worker): {:.2}x",
            walls[0] / walls[4],
            walls[0] / walls[1]
        );
    }

    // Section 2: the dependence-limited SpTRSV tail. A tridiagonal
    // chain serializes the whole solve, and round-robin placement puts
    // every consecutive row on a different tile, so each row pays a
    // full NoC transit during which exactly one flit exists
    // machine-wide. At the paper's NoC-latency sensitivity points the
    // machine is idle for most cycles and the fast-forward path does
    // all the work.
    header(
        "sim_perf §2 — SpTRSV serial chain (fast-forward territory)",
        "",
    );
    let n = 64 * ctx.grid.num_tiles();
    let a = generate::tridiagonal(n);
    let l = a.lower_triangle();
    let p = RoundRobinMapper.map(&a, ctx.grid);
    let prog = Program::compile_sptrsv_lower(&l, &a, &p);
    let b: Vec<f64> = (0..n)
        .map(|i| 1.0 + ((i * 31 % 17) as f64) / 17.0)
        .collect();
    row("hop", &["base".into(), "ff".into(), "speedup".into()]);
    let mut headline = 0.0f64;
    for hop in [1u32, 4, 16] {
        let mut wall = [0.0f64; 2];
        let mut base = None;
        let mut cycles = 0u64;
        for (i, ff) in [false, true].into_iter().enumerate() {
            let mut cfg = SimConfig::azul(ctx.grid);
            cfg.hop_latency = hop;
            cfg.fast_forward = ff;
            let t0 = Instant::now();
            let (x, stats) = run_kernel(&cfg, &prog, &b);
            wall[i] = t0.elapsed().as_secs_f64();
            cycles = stats.cycles;
            let mut doc = TelemetryReport::default();
            doc.scenario_field("section", "sptrsv");
            doc.scenario_field("tracing", false);
            doc.scenario_field("kernel", "sptrsv_lower");
            doc.scenario_field("matrix", "tridiagonal");
            doc.scenario_field("n", n as u64);
            doc.scenario_field("hop_latency", hop as u64);
            doc.scenario_field("fast_forward", ff);
            doc.scenario_field("wall_seconds", wall[i]);
            doc.scenario_field("sim_mcycles_per_sec", stats.cycles as f64 / wall[i] / 1.0e6);
            azul_sim::telemetry::fill_report(&mut doc, &cfg, &stats);
            reports.push(doc);
            match &base {
                None => base = Some((x, stats)),
                Some((bx, bs)) => {
                    assert_eq!(&x, bx, "sptrsv output diverged under fast-forward");
                    assert_eq!(&stats, bs, "sptrsv stats diverged under fast-forward");
                }
            }
        }
        let speedup = wall[0] / wall[1];
        row(
            &format!("{hop} ({cycles} cyc)"),
            &[
                format!("{:.0} ms", wall[0] * 1e3),
                format!("{:.0} ms", wall[1] * 1e3),
                format!("{speedup:.2}x"),
            ],
        );
        headline = headline.max(speedup);
    }

    // Section 3: the event-engine headline — a mostly-idle machine.
    // The paper's machine is 64x64; a serial chain hand-placed onto 16
    // tiles spread across it leaves 4080 tiles untouched and, of the 16
    // live ones, at most one or two with anything to do on any given
    // cycle. The reference engine still ticks every reference-active
    // tile every cycle; the event engine ticks only *due* tiles
    // (O(active) per step) and jumps the clock across the long NoC
    // transits. This section is the trend guard for CI: `bench-smoke`
    // diffs `event_speedup` against the committed baseline.
    header(
        "sim_perf §3 — idle-heavy 64x64 topology (event-engine territory)",
        "",
    );
    let big = TileGrid::square(64);
    let n3 = match ctx.scale {
        Scale::Tiny => 2_048,
        Scale::Small => 4_096,
        Scale::Medium => 8_192,
    };
    let a3 = generate::tridiagonal(n3);
    let l3 = a3.lower_triangle();
    // 16 active tiles at maximal spread: one per (8 + 16i, 8 + 16j)
    // grid position, consecutive chain rows round-robined across them
    // so every dependence pays a cross-machine NoC transit.
    let spots: Vec<u32> = (0..16u32)
        .map(|k| (8 + 16 * (k / 4)) * 64 + (8 + 16 * (k % 4)))
        .collect();
    let tile_of_row = |r: usize| spots[r % spots.len()];
    let vec_tile: Vec<u32> = (0..n3).map(tile_of_row).collect();
    let nnz_tile: Vec<u32> = a3.iter().map(|(r, _, _)| tile_of_row(r)).collect();
    let p3 = Placement::new(big, nnz_tile, vec_tile);
    let prog3 = Program::compile_sptrsv_lower(&l3, &a3, &p3);
    let b3: Vec<f64> = (0..n3)
        .map(|i| 1.0 + ((i * 31 % 17) as f64) / 17.0)
        .collect();
    row("engine", &["base".into(), "event".into(), "speedup".into()]);
    let mut event_speedup = 0.0f64;
    {
        let mut wall = [0.0f64; 2];
        let mut base = None;
        let mut cycles = 0u64;
        for (i, event) in [false, true].into_iter().enumerate() {
            let mut cfg = SimConfig::azul(big);
            cfg.hop_latency = 128;
            cfg.event_engine = event;
            let t0 = Instant::now();
            let (x, stats) = run_kernel(&cfg, &prog3, &b3);
            wall[i] = t0.elapsed().as_secs_f64();
            cycles = stats.cycles;
            let mut doc = TelemetryReport::default();
            doc.scenario_field("section", "idle_heavy");
            doc.scenario_field("tracing", false);
            doc.scenario_field("kernel", "sptrsv_lower");
            doc.scenario_field("matrix", "tridiagonal");
            doc.scenario_field("n", n3 as u64);
            doc.scenario_field("grid", "64x64");
            doc.scenario_field("active_tiles", spots.len() as u64);
            doc.scenario_field("hop_latency", 128u64);
            doc.scenario_field("event_engine", event);
            doc.scenario_field("wall_seconds", wall[i]);
            doc.scenario_field("sim_mcycles_per_sec", stats.cycles as f64 / wall[i] / 1.0e6);
            if event {
                event_speedup = wall[0] / wall[1];
                doc.scenario_field("event_speedup", event_speedup);
            }
            azul_sim::telemetry::fill_report(&mut doc, &cfg, &stats);
            reports.push(doc);
            match &base {
                None => base = Some((x, stats)),
                Some((bx, bs)) => {
                    assert_eq!(&x, bx, "output diverged under the event engine");
                    assert_eq!(&stats, bs, "stats diverged under the event engine");
                }
            }
        }
        row(
            &format!("64x64/{} act ({cycles} cyc)", spots.len()),
            &[
                format!("{:.0} ms", wall[0] * 1e3),
                format!("{:.0} ms", wall[1] * 1e3),
                format!("{event_speedup:.2}x"),
            ],
        );
    }

    match write_bench_artifact("sim_perf", &reports) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => println!("artifact write failed: {e}"),
    }
    println!("headline: fast-forward speedup on SpTRSV chain {headline:.2}x");
    println!("headline: event-engine speedup on idle-heavy 64x64 {event_speedup:.2}x");
    assert!(
        headline >= 2.0,
        "fast-forward should cut wall-clock at least 2x on the \
         dependence-limited SpTRSV chain (got {headline:.2}x)"
    );
    assert!(
        event_speedup >= 10.0,
        "the event engine should cut wall-clock at least 10x on the \
         idle-heavy 64x64 topology (got {event_speedup:.2}x)"
    );
}
