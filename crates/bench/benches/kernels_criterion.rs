//! Criterion micro-benchmarks of the substrate kernels: reference SpMV /
//! SpTRSV / IC(0), greedy coloring, hypergraph partitioning, the Azul
//! mapper, and one simulated SpMV kernel.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use azul_hypergraph::PartitionConfig;
use azul_mapping::strategies::{AzulMapper, Mapper, RoundRobinMapper};
use azul_mapping::workload::build_pcg_hypergraph;
use azul_mapping::TileGrid;
use azul_sim::config::SimConfig;
use azul_sim::machine::run_kernel;
use azul_sim::program::Program;
use azul_solver::ic0::ic0;
use azul_solver::kernels::sptrsv_lower;
use azul_sparse::coloring::{greedy_coloring, ColoringStrategy};
use azul_sparse::generate;

fn bench_kernels(c: &mut Criterion) {
    let a = generate::fem_mesh_3d(2000, 12, 7);
    let x: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.1).sin()).collect();
    let l = ic0(&a).expect("ic0 succeeds");

    c.bench_function("spmv_reference_2k", |b| {
        b.iter(|| black_box(a.spmv(black_box(&x))))
    });

    c.bench_function("sptrsv_reference_2k", |b| {
        b.iter(|| black_box(sptrsv_lower(black_box(&l), black_box(&x))))
    });

    c.bench_function("ic0_factorization_2k", |b| {
        b.iter(|| black_box(ic0(black_box(&a)).unwrap()))
    });

    c.bench_function("greedy_coloring_2k", |b| {
        b.iter(|| black_box(greedy_coloring(&a, ColoringStrategy::LargestDegreeFirst)))
    });
}

fn bench_mapping(c: &mut Criterion) {
    let a = generate::fem_mesh_3d(800, 8, 3);
    let grid = TileGrid::square(8);

    let mut group = c.benchmark_group("mapping");
    group.sample_size(10);
    group.bench_function("hypergraph_partition_64way", |b| {
        let w = build_pcg_hypergraph(&a, 2, 0);
        b.iter(|| black_box(w.hg.partition(&PartitionConfig::fast(64))))
    });
    group.bench_function("azul_mapper_fast_64tiles", |b| {
        let mapper = AzulMapper {
            fast: true,
            ..Default::default()
        };
        b.iter(|| black_box(mapper.map(&a, grid)))
    });
    group.finish();
}

fn bench_sim(c: &mut Criterion) {
    let a = generate::fem_mesh_3d(500, 6, 5);
    let grid = TileGrid::square(4);
    let placement = RoundRobinMapper.map(&a, grid);
    let prog = Program::compile_spmv(&a, &placement);
    let cfg = SimConfig::azul(grid);
    let x: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.3).cos()).collect();

    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.bench_function("simulated_spmv_16tiles", |b| {
        b.iter_batched(
            || (),
            |_| black_box(run_kernel(&cfg, &prog, &x)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_mapping, bench_sim);
criterion_main!(benches);
