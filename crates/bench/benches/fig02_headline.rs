//! Fig. 2: headline gmean GFLOP/s comparison on the representative set:
//! GPU, Dalorex (in-order PEs + round-robin mapping), Azul PEs with the
//! Dalorex mapping, and full Azul.
//!
//! Paper values (64x64 tiles, 16 TFLOP/s peak): GPU 35, Dalorex 93,
//! Azul-PEs+Dalorex-mapping 748 (8x over Dalorex), Azul 7640 (10.2x over
//! the previous). At reduced tile count the PE gap persists but the
//! mapping gap compresses (it scales with the bisection width, ~sqrt(P)
//! — see EXPERIMENTS.md).

use azul_bench::{gmean, gpu_overhead_scale, header, representative, row, run_pcg, BenchCtx};
use azul_mapping::strategies::{Mapper, RoundRobinMapper};
use azul_models::gpu::{GpuModel, GpuWorkload};
use azul_sim::config::SimConfig;

fn main() {
    let ctx = BenchCtx::from_env();
    let matrices = representative(&ctx);

    let mut gpu = Vec::new();
    let mut dalorex = Vec::new();
    let mut azul_pe_rr = Vec::new();
    let mut azul = Vec::new();

    for m in &matrices {
        let model = GpuModel::with_overhead_scale(gpu_overhead_scale(m));
        gpu.push(model.pcg_gflops(&GpuWorkload::from_matrix(&m.a)));

        let rr = RoundRobinMapper.map(&m.a, ctx.grid);
        dalorex.push(run_pcg(m, &rr, &SimConfig::dalorex(ctx.grid), &ctx).gflops);
        azul_pe_rr.push(run_pcg(m, &rr, &SimConfig::azul(ctx.grid), &ctx).gflops);

        let az = ctx.azul_mapper().map(&m.a, ctx.grid);
        azul.push(run_pcg(m, &az, &SimConfig::azul(ctx.grid), &ctx).gflops);
    }

    let peak = SimConfig::azul(ctx.grid).peak_gflops();
    header(
        "Fig. 2 — gmean GFLOP/s by system",
        "GPU 35 | Dalorex 93 | Azul PEs + Dalorex mapping 748 | Azul 7640 (64x64 tiles)",
    );
    println!(
        "({}x{} tiles here; accelerator peak {peak:.0} GFLOP/s)",
        ctx.grid.width(),
        ctx.grid.height()
    );
    row("system", &["gmean GF/s".into(), "vs GPU".into()]);
    let g_gpu = gmean(&gpu);
    for (name, vals) in [
        ("GPU", &gpu),
        ("Dalorex", &dalorex),
        ("AzulPE+RRmap", &azul_pe_rr),
        ("Azul", &azul),
    ] {
        let g = gmean(vals);
        row(name, &[format!("{g:.1}"), format!("{:.1}x", g / g_gpu)]);
    }

    // Shape checks: the paper's ordering must hold.
    assert!(gmean(&dalorex) > g_gpu, "Dalorex should beat the GPU");
    assert!(
        gmean(&azul_pe_rr) > 2.0 * gmean(&dalorex),
        "specialized PEs should widen the gap"
    );
    assert!(
        gmean(&azul) > gmean(&azul_pe_rr),
        "the Azul mapping should add further speedup"
    );
}
