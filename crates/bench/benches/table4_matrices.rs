//! Table IV: the benchmark-matrix suite — paper dimensions vs the scaled
//! synthetic analogs this reproduction runs (DESIGN.md §3).

use azul_bench::{header, row, BenchCtx};
use azul_sparse::stats::MatrixStats;
use azul_sparse::suite;

fn main() {
    let ctx = BenchCtx::from_env();
    header(
        "Table IV — benchmark matrices (paper scale vs synthetic analog)",
        "paper: 20 SPD matrices, 3.75e6-1.42e7 nnz, footprints 29-109 MB",
    );
    row(
        "matrix",
        &[
            "paper n".into(),
            "paper nnz".into(),
            "paper nnz/r".into(),
            "analog n".into(),
            "analog nnz".into(),
            "analog nnz/r".into(),
            "A (KB)".into(),
        ],
    );
    for spec in suite::suite_4k() {
        let a = spec.build(ctx.scale);
        let s = MatrixStats::of(&a);
        row(
            spec.name,
            &[
                format!("{:.2e}", spec.paper_n),
                format!("{:.2e}", spec.paper_nnz),
                format!("{:.0}", spec.paper_nnz_per_row()),
                s.n.to_string(),
                s.nnz.to_string(),
                format!("{:.0}", s.avg_row_nnz),
                format!("{:.0}", s.matrix_bytes as f64 / 1024.0),
            ],
        );
        // The analog must land in the same density class.
        let ratio = s.avg_row_nnz / spec.paper_nnz_per_row();
        assert!(
            (0.08..5.0).contains(&ratio), // nd12k (394 nnz/row) cannot be matched at reduced n
            "{}: analog density off by {ratio:.1}x",
            spec.name
        );
    }
    println!();
    println!("mid-section (16k-tile) and bottom (64k-tile) suites:");
    for spec in suite::suite_16k().into_iter().chain(suite::suite_64k()) {
        row(
            spec.name,
            &[
                format!("{:.2e}", spec.paper_n),
                format!("{:.2e}", spec.paper_nnz),
                format!("{:.0}", spec.paper_nnz_per_row()),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ],
        );
    }
}
