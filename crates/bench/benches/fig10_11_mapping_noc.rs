//! Figs. 10 & 11: mapping strategies under idealized PEs.
//!
//! Fig. 10 — PCG throughput with Round-Robin / Block / Azul mappings on
//! hardware whose PEs run every task instantly (so only the NoC binds).
//! Fig. 11 — normalized NoC link activations for the same mappings.
//!
//! Paper: the Azul mapping delivers several times the throughput of the
//! position-based mappings and cuts link activations by an order of
//! magnitude or more.

use azul_bench::{header, representative, row, run_pcg, BenchCtx};
use azul_mapping::strategies::{BlockMapper, Mapper, RoundRobinMapper};
use azul_sim::config::SimConfig;

fn main() {
    let ctx = BenchCtx::from_env();
    let cfg = SimConfig::ideal(ctx.grid);
    let matrices = representative(&ctx);

    let mut rows: Vec<(&str, [f64; 3], [u64; 3])> = Vec::new();
    for m in &matrices {
        let mappers: [(&str, Box<dyn Mapper>); 3] = [
            ("rr", Box::new(RoundRobinMapper)),
            ("block", Box::new(BlockMapper)),
            ("azul", Box::new(ctx.azul_mapper())),
        ];
        let mut gflops = [0.0; 3];
        let mut links = [0u64; 3];
        for (k, (_, mapper)) in mappers.iter().enumerate() {
            let placement = mapper.map(&m.a, ctx.grid);
            let rep = run_pcg(m, &placement, &cfg, &ctx);
            gflops[k] = rep.gflops;
            links[k] = rep.stats.link_activations;
        }
        rows.push((m.name, gflops, links));
    }

    header(
        "Fig. 10 — PCG GFLOP/s with idealized PEs, by mapping",
        "Azul mapping >> Block ≈ RoundRobin (communication-bound)",
    );
    row(
        "matrix",
        &["round-robin".into(), "block".into(), "azul".into()],
    );
    for (name, g, _) in &rows {
        row(
            name,
            &[
                format!("{:.0}", g[0]),
                format!("{:.0}", g[1]),
                format!("{:.0}", g[2]),
            ],
        );
    }

    header(
        "Fig. 11 — NoC link activations, normalized to round-robin",
        "Azul mapping reduces traffic by an order of magnitude or more",
    );
    row(
        "matrix",
        &["round-robin".into(), "block".into(), "azul".into()],
    );
    for (name, _, l) in &rows {
        let base = l[0].max(1) as f64;
        row(
            name,
            &[
                "1.00".into(),
                format!("{:.2}", l[1] as f64 / base),
                format!("{:.2}", l[2] as f64 / base),
            ],
        );
        assert!(
            (l[2] as f64) < 0.5 * base,
            "{name}: azul should cut link activations by >2x"
        );
    }
}
