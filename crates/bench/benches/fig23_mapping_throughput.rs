//! Fig. 23 + Sec. VI-C/VI-D: end-to-end throughput for all four mapping
//! strategies, the NoC-traffic reductions, and the mapping-cost table.
//!
//! Paper: Azul's mapping beats Round-Robin by gmean 10.2x, Block by
//! 13.5x, SparseP by 25.2x; traffic reductions 66x/46x/34x; mapping costs
//! 6.16 min (Azul) vs 0.25/1.9/0.6 min for Block/RR/SparseP at 4096 PEs.

use azul_bench::{all_mappers, full_suite, gmean, header, row, run_pcg, BenchCtx};
use azul_mapping::traffic::pcg_iteration_traffic;
use azul_sim::config::SimConfig;
use std::time::Instant;

fn main() {
    let ctx = BenchCtx::from_env();
    let cfg = SimConfig::azul(ctx.grid);
    let names: Vec<&str> = all_mappers(&ctx).iter().map(|(n, _)| *n).collect();

    let mut gflops: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
    let mut hops: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
    let mut map_secs: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
    let mut per_matrix: Vec<(&'static str, Vec<f64>)> = Vec::new();

    for m in full_suite(&ctx) {
        let mut row_gf = Vec::new();
        for (k, (_, mapper)) in all_mappers(&ctx).iter().enumerate() {
            let t0 = Instant::now();
            let placement = mapper.map(&m.a, ctx.grid);
            map_secs[k].push(t0.elapsed().as_secs_f64());
            let traffic = pcg_iteration_traffic(&m.a, &placement);
            hops[k].push(traffic.link_hops.max(1) as f64);
            let rep = run_pcg(&m, &placement, &cfg, &ctx);
            gflops[k].push(rep.gflops);
            row_gf.push(rep.gflops);
        }
        eprintln!("[{}] {:?}", m.name, row_gf);
        per_matrix.push((m.name, row_gf));
    }

    header(
        "Fig. 23 — end-to-end GFLOP/s by mapping strategy",
        "Azul beats RoundRobin 10.2x, Block 13.5x, SparseP 25.2x gmean (64x64)",
    );
    row(
        "matrix",
        &names.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    for (name, gf) in &per_matrix {
        row(
            name,
            &gf.iter().map(|g| format!("{g:.0}")).collect::<Vec<_>>(),
        );
    }
    let g: Vec<f64> = gflops.iter().map(|v| gmean(v)).collect();
    println!(
        "gmean GFLOP/s: rr {:.0} | block {:.0} | sparsep {:.0} | azul {:.0}",
        g[0], g[1], g[2], g[3]
    );
    println!(
        "azul speedup: vs rr {:.2}x | vs block {:.2}x | vs sparsep {:.2}x",
        g[3] / g[0],
        g[3] / g[1],
        g[3] / g[2]
    );
    assert!(
        g[3] > g[0] && g[3] > g[1] && g[3] > g[2],
        "Azul mapping must win"
    );

    header(
        "Sec. VI-C — NoC traffic reduction (static model, PCG iteration)",
        "paper: 66x over RoundRobin, 46x over Block, 34x over SparseP",
    );
    let h: Vec<f64> = hops.iter().map(|v| gmean(v)).collect();
    println!(
        "gmean link-hops: rr {:.2e} | block {:.2e} | sparsep {:.2e} | azul {:.2e}",
        h[0], h[1], h[2], h[3]
    );
    println!(
        "azul traffic reduction: vs rr {:.1}x | vs block {:.1}x | vs sparsep {:.1}x",
        h[0] / h[3],
        h[1] / h[3],
        h[2] / h[3]
    );
    assert!(h[0] / h[3] > 2.0, "Azul must cut traffic substantially");

    header(
        "Sec. VI-D — mapping algorithm cost (average per matrix)",
        "paper (4096 PEs): Azul 6.16 min | Block 0.25 | RoundRobin 1.9 | SparseP 0.6",
    );
    for (k, name) in names.iter().enumerate() {
        let avg = map_secs[k].iter().sum::<f64>() / map_secs[k].len() as f64;
        println!("  {name:<12} {avg:>8.3} s");
    }
    let azul_avg = map_secs[3].iter().sum::<f64>() / map_secs[3].len() as f64;
    let block_avg = map_secs[1].iter().sum::<f64>() / map_secs[1].len() as f64;
    assert!(
        azul_avg > block_avg,
        "the hypergraph mapping is the costly one, as in the paper"
    );
}
