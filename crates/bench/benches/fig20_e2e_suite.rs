//! The end-to-end suite evaluation: regenerates **Fig. 20** (speedup over
//! the GPU for ALRESCHA / Dalorex / Azul), **Fig. 21** (Azul PE cycle
//! breakdown), **Fig. 22** (Azul runtime breakdown by kernel) and
//! **Fig. 24** (power breakdown) in one pass over the 20-matrix suite,
//! plus the Table III configuration header.
//!
//! Paper headline (64x64 tiles): Azul gmean 217x over GPU, 159x over
//! ALRESCHA, 90x over Dalorex; 7,640 gmean GFLOP/s. At reduced tile count
//! the ordering and the breakdown shapes hold while the absolute ratios
//! compress (see EXPERIMENTS.md).

use azul_bench::{
    full_suite, gmean, gpu_overhead_scale, header, row, run_pcg, telemetry_report,
    write_bench_artifact, BenchCtx,
};
use azul_mapping::strategies::{Mapper, RoundRobinMapper};
use azul_models::energy::EnergyModel;
use azul_models::gpu::{GpuModel, GpuWorkload};
use azul_models::AlreschaModel;
use azul_sim::config::SimConfig;
use azul_sim::stats::KernelClass;

struct Result {
    name: &'static str,
    gpu: f64,
    alrescha: f64,
    dalorex: f64,
    azul: f64,
    azul_report: azul_sim::pcg::PcgSimReport,
}

fn main() {
    let ctx = BenchCtx::from_env();
    let mut azul_cfg = SimConfig::azul(ctx.grid);
    // Collect per-PE/per-link detail for the telemetry artifact.
    azul_cfg.detailed_stats = true;
    let dalorex_cfg = SimConfig::dalorex(ctx.grid);

    header("Table III — simulated configuration", "");
    println!(
        "tiles {}x{} ({}), {} GHz, peak {:.0} GFLOP/s, SRAM latency {} cyc, hop latency {} cyc, {} contexts/PE",
        ctx.grid.width(),
        ctx.grid.height(),
        ctx.grid.num_tiles(),
        azul_cfg.clock_ghz,
        azul_cfg.peak_gflops(),
        azul_cfg.sram_latency,
        azul_cfg.hop_latency,
        azul_cfg.contexts,
    );

    let alrescha = AlreschaModel::default();
    let mut results: Vec<Result> = Vec::new();
    let mut telemetry = Vec::new();
    for m in full_suite(&ctx) {
        let gpu_model = GpuModel::with_overhead_scale(gpu_overhead_scale(&m));
        let gpu = gpu_model.pcg_gflops(&GpuWorkload::from_matrix(&m.a));
        let nnz_l = m.a.lower_triangle().nnz();
        let alr = alrescha.pcg_gflops(m.a.rows(), m.a.nnz(), nnz_l);

        let rr = RoundRobinMapper.map(&m.a, ctx.grid);
        let dal = run_pcg(&m, &rr, &dalorex_cfg, &ctx);
        let az_place = ctx.azul_mapper().map(&m.a, ctx.grid);
        let az = run_pcg(&m, &az_place, &azul_cfg, &ctx);

        eprintln!(
            "[{}] gpu {gpu:.1} alrescha {alr:.1} dalorex {:.1} azul {:.1} GF/s",
            m.name, dal.gflops, az.gflops
        );
        telemetry.push(telemetry_report(&m, &azul_cfg, &az));
        results.push(Result {
            name: m.name,
            gpu,
            alrescha: alr,
            dalorex: dal.gflops,
            azul: az.gflops,
            azul_report: az,
        });
    }

    // Persist the telemetry artifact before the paper-ordering sanity
    // checks: at reduced scales those can fail while the measurements
    // themselves are still worth keeping.
    match write_bench_artifact("fig20_e2e_suite", &telemetry) {
        Ok(path) => eprintln!("telemetry artifact: {}", path.display()),
        Err(e) => eprintln!("failed to write telemetry artifact: {e}"),
    }

    // ---- Fig. 20 ----
    header(
        "Fig. 20 — end-to-end speedup over the GPU baseline",
        "gmean: ALRESCHA 1.4x, Dalorex 2.4x, Azul 217x (64x64 tiles)",
    );
    row(
        "matrix",
        &[
            "ALRESCHA".into(),
            "Dalorex".into(),
            "Azul".into(),
            "Azul GF/s".into(),
        ],
    );
    for r in &results {
        row(
            r.name,
            &[
                format!("{:.1}x", r.alrescha / r.gpu),
                format!("{:.1}x", r.dalorex / r.gpu),
                format!("{:.1}x", r.azul / r.gpu),
                format!("{:.0}", r.azul),
            ],
        );
    }
    let g_gpu = gmean(&results.iter().map(|r| r.gpu).collect::<Vec<_>>());
    let g_alr = gmean(&results.iter().map(|r| r.alrescha).collect::<Vec<_>>());
    let g_dal = gmean(&results.iter().map(|r| r.dalorex).collect::<Vec<_>>());
    let g_az = gmean(&results.iter().map(|r| r.azul).collect::<Vec<_>>());
    println!(
        "gmean GFLOP/s: GPU {g_gpu:.1} | ALRESCHA {g_alr:.1} | Dalorex {g_dal:.1} | Azul {g_az:.1}"
    );
    println!(
        "gmean speedup over GPU: ALRESCHA {:.1}x | Dalorex {:.1}x | Azul {:.1}x",
        g_alr / g_gpu,
        g_dal / g_gpu,
        g_az / g_gpu
    );
    assert!(g_az > g_dal && g_dal > g_gpu, "paper ordering must hold");
    assert!(g_az > g_alr, "Azul must beat ALRESCHA");

    // ---- Fig. 21 ----
    header(
        "Fig. 21 — Azul PE cycle breakdown",
        ">40% of PE cycles are FMACs on almost all inputs; stalls from SpTRSV parallelism limits",
    );
    row(
        "matrix",
        &[
            "Fmac".into(),
            "Add".into(),
            "Mul".into(),
            "Send".into(),
            "Stall/idle".into(),
        ],
    );
    for r in &results {
        let b = r.azul_report.stats.cycle_breakdown(ctx.grid.num_tiles());
        row(
            r.name,
            &[
                format!("{:.1}%", b[0] * 100.0),
                format!("{:.1}%", b[1] * 100.0),
                format!("{:.1}%", b[2] * 100.0),
                format!("{:.1}%", b[3] * 100.0),
                format!("{:.1}%", b[4] * 100.0),
            ],
        );
    }

    // ---- Fig. 22 ----
    header(
        "Fig. 22 — Azul runtime breakdown by kernel",
        "SpMV and SpTRSV still dominate; SpTRSV grows on parallelism-limited matrices",
    );
    row(
        "matrix",
        &["SpTRSV".into(), "SpMV".into(), "VectorOps".into()],
    );
    for r in &results {
        let k = &r.azul_report.kernel_cycles;
        let total: f64 = k.iter().sum::<f64>().max(1e-9);
        row(
            r.name,
            &[
                format!("{:.1}%", k[KernelClass::Sptrsv as usize] / total * 100.0),
                format!("{:.1}%", k[KernelClass::Spmv as usize] / total * 100.0),
                format!("{:.1}%", k[KernelClass::VectorOps as usize] / total * 100.0),
            ],
        );
    }

    // ---- Fig. 24 ----
    header(
        "Fig. 24 — power breakdown (activity factors from simulation)",
        "210 W average, up to 288 W at 4096 tiles; SRAM dominates",
    );
    let energy = EnergyModel::default();
    row(
        "matrix",
        &[
            "SRAM W".into(),
            "compute W".into(),
            "NoC W".into(),
            "leak W".into(),
            "total W".into(),
        ],
    );
    for r in &results {
        let stats = &r.azul_report.stats;
        let elapsed = azul_cfg.cycles_to_seconds(stats.cycles.max(1));
        let p = energy.power(stats, elapsed, ctx.grid.num_tiles());
        row(
            r.name,
            &[
                format!("{:.2}", p.sram_w),
                format!("{:.2}", p.compute_w),
                format!("{:.2}", p.noc_w),
                format!("{:.2}", p.leakage_w),
                format!("{:.2}", p.total()),
            ],
        );
        assert!(
            p.sram_w >= p.noc_w,
            "{}: SRAM power should dominate the NoC",
            r.name
        );
    }
}
