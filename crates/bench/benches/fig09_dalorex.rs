//! Fig. 9: Dalorex (4096 scalar in-order cores, round-robin mapping)
//! running PCG — GFLOP/s and fraction of its 16 TFLOP/s peak.
//!
//! Paper: at most 187 GFLOP/s, ~1% of peak.

use azul_bench::{header, representative, row, run_pcg, BenchCtx};
use azul_mapping::strategies::{Mapper, RoundRobinMapper};
use azul_sim::config::SimConfig;

fn main() {
    let ctx = BenchCtx::from_env();
    let cfg = SimConfig::dalorex(ctx.grid);
    header(
        "Fig. 9 — Dalorex performance on PCG",
        "<= 187 GFLOP/s, ~1% of its 16 TFLOP/s peak (64x64 tiles)",
    );
    println!("(peak here: {:.0} GFLOP/s)", cfg.peak_gflops());
    row("matrix", &["GFLOP/s".into(), "% of peak".into()]);
    for m in representative(&ctx) {
        let placement = RoundRobinMapper.map(&m.a, ctx.grid);
        let rep = run_pcg(&m, &placement, &cfg, &ctx);
        let pct = 100.0 * rep.gflops / cfg.peak_gflops();
        row(
            m.name,
            &[format!("{:.1}", rep.gflops), format!("{pct:.2}%")],
        );
        assert!(
            pct < 20.0,
            "Dalorex must stay far below peak, got {pct:.1}%"
        );
    }
}
