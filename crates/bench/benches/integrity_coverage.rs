//! Detection-coverage campaign for the numerical-integrity subsystem:
//! seeded single-bit SRAM flips swept across (tile × accumulator slot ×
//! bit position), each injected mid-solve into a cycle-timed PCG run
//! with [`IntegrityPolicy::audit`] armed.
//!
//! Every run is classified into exactly one bucket:
//!
//! - **harmless** — the flip never landed (dead slot, solve finished
//!   first) or landed without moving the answer past the tolerance, so
//!   no intervention was needed and none fired.
//! - **recovered** — an integrity check or divergence guard flagged the
//!   flip and the rollback ladder carried the solve back to the
//!   fault-free tolerance.
//! - **detected** — the corruption was flagged (checksum violation,
//!   rollback, or a loud non-converged status) but the solve ended
//!   without a clean answer; the wrong answer was *refused*, not
//!   shipped.
//! - **escaped** — the solver declared convergence while the true
//!   residual `||b - A·x||` missed the tolerance. This is the silent
//!   wrong answer the subsystem exists to eliminate; the campaign
//!   asserts the count is zero and exits nonzero otherwise.
//!
//! Emits `BENCH_integrity.json`: one telemetry document per sweep point
//! (scenario = tile/slot/bit/at_cycle/outcome, plus the fault journal
//! and the schema-v7 `integrity` section) and a trailing `summary`
//! document carrying the four bucket counters.
//!
//! `AZUL_INTEGRITY_FAST=1` shrinks the sweep to a 3-point subset for CI
//! smoke jobs; the full sweep is 4 tiles × 2 slots × 6 bits = 48 runs.

use azul_bench::{header, row, write_bench_artifact};
use azul_mapping::strategies::{Mapper, RoundRobinMapper};
use azul_mapping::TileGrid;
use azul_sim::config::SimConfig;
use azul_sim::faults::{FaultEvent, FaultKind, FaultPlan, IntegrityPolicy};
use azul_sim::pcg::{PcgSim, PcgSimConfig, PcgSimReport};
use azul_sim::telemetry::{describe_config, fill_fault_report, fill_integrity_report, fill_report};
use azul_sparse::{dense, generate, Csr};
use azul_telemetry::report::TelemetryReport;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Harmless,
    Recovered,
    Detected,
    Escaped,
}

impl Outcome {
    fn name(self) -> &'static str {
        match self {
            Outcome::Harmless => "harmless",
            Outcome::Recovered => "recovered",
            Outcome::Detected => "detected",
            Outcome::Escaped => "escaped",
        }
    }
}

/// True residual of the returned iterate, independent of every residual
/// the solver itself maintained.
fn true_residual(a: &Csr, b: &[f64], x: &[f64]) -> f64 {
    let ax = a.spmv(x);
    let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, yi)| bi - yi).collect();
    dense::norm2(&r)
}

/// Classifies one faulted run. `escape_tol` carries slack over the
/// solve tolerance matching the final audit's drift bound, so rounding
/// on a legitimately converged answer is never miscounted as an escape.
fn classify(report: &PcgSimReport, true_r: f64, escape_tol: f64) -> Outcome {
    let landed = report.fault_events.iter().any(|f| f.applied);
    let flagged = !report.integrity.violations.is_empty() || !report.recoveries.is_empty();
    let clean = report.converged && true_r <= escape_tol;
    if report.integrity.escapes > 0 || (report.converged && true_r > escape_tol) {
        Outcome::Escaped
    } else if !landed {
        Outcome::Harmless
    } else if flagged && clean {
        Outcome::Recovered
    } else if flagged || !report.converged {
        Outcome::Detected
    } else {
        Outcome::Harmless
    }
}

fn main() {
    let fast = std::env::var("AZUL_INTEGRITY_FAST").is_ok_and(|v| v == "1");
    // Fixed campaign geometry: the sweep axes are the experiment, so the
    // shared AZUL_BENCH_GRID/SCALE knobs are deliberately not honored.
    let a = generate::grid_laplacian_2d(16, 16);
    let grid = TileGrid::new(2, 2);
    let placement = RoundRobinMapper.map(&a, grid);
    let n = a.rows();
    let b: Vec<f64> = (0..n)
        .map(|i| ((i * 31 % 17) as f64) / 17.0 + 0.25)
        .collect();

    let run_cfg = PcgSimConfig {
        timed_iterations: 0, // every iteration cycle-timed => every launch checksummed
        integrity: IntegrityPolicy::audit(),
        ..Default::default()
    };
    // The final audit admits drift_factor·tol plus a rounding floor;
    // anything converged beyond that slack is a genuine wrong answer.
    let escape_tol = run_cfg.integrity.drift_factor * run_cfg.tol;

    // Fault-free baseline fixes the expected answer quality.
    let clean_cfg = SimConfig::azul(grid);
    let clean_sim = PcgSim::build(&a, &placement, &clean_cfg).expect("baseline build");
    let clean = clean_sim.run(&b, &run_cfg);
    assert!(clean.converged, "fault-free baseline must converge");
    assert!(
        clean.integrity.violations.is_empty() && clean.integrity.escapes == 0,
        "fault-free baseline must audit clean"
    );

    // The fast subset replays tile 0 / slot 0 from the full sweep — a
    // slot that is live mid-solve, so high bits exercise the detect +
    // rollback ladder while bit 12 stays below the noise floor.
    let tiles: &[u32] = if fast { &[0] } else { &[0, 1, 2, 3] };
    let slots: &[u32] = if fast { &[0] } else { &[0, 1] };
    let bits: &[u32] = if fast {
        &[62, 52, 12]
    } else {
        &[62, 52, 40, 30, 12, 1]
    };

    header(
        "Integrity — seeded bit-flip detection coverage (tile × slot × bit)",
        "acceptance: zero wrong-answer escapes across the sweep",
    );
    row(
        "point",
        &[
            "outcome".into(),
            "violations".into(),
            "rollbacks".into(),
            "true resid".into(),
        ],
    );

    let mut reports: Vec<TelemetryReport> = Vec::new();
    let mut counts = [0u64; 4]; // harmless, recovered, detected, escaped
    for &tile in tiles {
        for &slot in slots {
            for &bit in bits {
                // Scatter injection cycles deterministically across the
                // first ~20 iterations (~2300 cycles each) so the sweep
                // samples the whole live window, not one phase. A pure
                // function of the sweep point (not of iteration order),
                // so the fast subset replays exactly the runs the full
                // sweep would.
                let key = u64::from(tile) * 31 + u64::from(slot) * 17 + u64::from(bit);
                let at_cycle = 2_000 + (key * 1_733) % 40_000;
                let mut cfg = SimConfig::azul(grid);
                cfg.faults = Some(FaultPlan::new(vec![FaultEvent {
                    at_cycle,
                    kind: FaultKind::SramBitFlip { tile, slot, bit },
                }]));
                let sim = PcgSim::build(&a, &placement, &cfg).expect("sweep build");
                let report = sim.run(&b, &run_cfg);
                let true_r = true_residual(&a, &b, &report.x);
                let outcome = classify(&report, true_r, escape_tol);
                counts[match outcome {
                    Outcome::Harmless => 0,
                    Outcome::Recovered => 1,
                    Outcome::Detected => 2,
                    Outcome::Escaped => 3,
                }] += 1;

                row(
                    &format!("t{tile} s{slot} b{bit}"),
                    &[
                        outcome.name().into(),
                        format!("{}", report.integrity.violations.len()),
                        format!("{}", report.recoveries.len()),
                        format!("{true_r:.2e}"),
                    ],
                );

                let mut doc = TelemetryReport::default();
                doc.scenario_field("section", "sweep");
                doc.scenario_field("tile", u64::from(tile));
                doc.scenario_field("slot", u64::from(slot));
                doc.scenario_field("bit", u64::from(bit));
                doc.scenario_field("at_cycle", at_cycle);
                doc.scenario_field("outcome", outcome.name());
                describe_config(&mut doc, &cfg);
                fill_report(&mut doc, &cfg, &report.stats);
                fill_fault_report(&mut doc, &report.fault_events, &report.recoveries);
                fill_integrity_report(&mut doc, &report.integrity);
                doc.counter("iterations", report.iterations as u64);
                doc.counter("converged", u64::from(report.converged));
                reports.push(doc);
            }
        }
    }

    let total = counts.iter().sum::<u64>();
    let mut summary = TelemetryReport::default();
    summary.scenario_field("section", "summary");
    summary.counter("runs", total);
    summary.counter("harmless", counts[0]);
    summary.counter("recovered", counts[1]);
    summary.counter("detected", counts[2]);
    summary.counter("escaped", counts[3]);
    reports.push(summary);

    println!();
    println!(
        "runs {total}: harmless {}, recovered {}, detected {}, escaped {}",
        counts[0], counts[1], counts[2], counts[3]
    );

    match write_bench_artifact("integrity", &reports) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write BENCH_integrity.json: {e}");
            std::process::exit(1);
        }
    }

    assert!(
        counts[1] + counts[2] > 0,
        "the sweep must exercise the detection ladder at least once"
    );
    if counts[3] > 0 {
        eprintln!(
            "FAIL: {} wrong-answer escape(s) — corrupted solves shipped as converged",
            counts[3]
        );
        std::process::exit(1);
    }
    println!("PASS: zero wrong-answer escapes");
}
