//! Fig. 1: V100 GFLOP/s and fraction of peak running PCG (Ginkgo) on the
//! six representative matrices.
//!
//! Paper values: ~15-45 GFLOP/s, 0.2-0.6% of the 7 TFLOP/s FP64 peak.

use azul_bench::{gpu_overhead_scale, header, representative, row, BenchCtx};
use azul_models::gpu::{GpuModel, GpuWorkload};

fn main() {
    let ctx = BenchCtx::from_env();
    header(
        "Fig. 1 — GPU (V100, Ginkgo PCG) utilization on representative matrices",
        "0.2-0.6% of peak; even the best matrix only reaches 0.6%",
    );
    row("matrix", &["GFLOP/s".into(), "% of peak".into()]);
    for m in representative(&ctx) {
        let model = GpuModel::with_overhead_scale(gpu_overhead_scale(&m));
        let w = GpuWorkload::from_matrix(&m.a);
        let g = model.pcg_gflops(&w);
        let pct = 100.0 * model.fraction_of_peak(&w);
        row(m.name, &[format!("{g:.1}"), format!("{pct:.3}%")]);
        assert!(pct < 1.5, "GPU should stay far below peak");
    }
}
