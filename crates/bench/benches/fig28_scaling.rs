//! Fig. 28: scaling Azul up — the same matrices on 1x, 4x and 16x the
//! tiles.
//!
//! Paper: moving 64x64 -> 128x128 gives >2x on all but the
//! parallelism-limited matrices (nd12k); very large matrices on 256x256
//! reach up to 157 TFLOP/s (60% of peak). Here the grid triple is scaled
//! down (default 8/16/32 per side) with matrices held fixed, preserving
//! the experiment's shape: parallel matrices keep scaling, parallelism-
//! limited ones flatten.

use azul_bench::{header, prepare, row, run_pcg, BenchCtx};
use azul_mapping::strategies::Mapper;
use azul_mapping::TileGrid;
use azul_sim::config::SimConfig;
use azul_sparse::suite;

fn main() {
    let ctx = BenchCtx::from_env();
    let base_side = (ctx.grid.width() / 2).max(4);
    let sides = [base_side, base_side * 2, base_side * 4];

    // A parallelism-limited matrix, a mid-range one and a high-parallelism
    // grid matrix (the paper's nd12k / hood / thermal2 comparison points).
    let picks = ["nd12k", "hood", "thermal2"];

    header(
        "Fig. 28 — PCG performance on scaled-up Azul systems",
        ">2x per 4x tiles except parallelism-limited matrices (nd12k flattens)",
    );
    row(
        "matrix",
        &sides
            .iter()
            .map(|s| format!("{s}x{s} GF/s"))
            .collect::<Vec<_>>(),
    );

    for name in picks {
        let m = prepare(suite::by_name(name).unwrap(), ctx.scale);
        let mut cells = Vec::new();
        let mut gf = Vec::new();
        for &side in &sides {
            let grid = TileGrid::square(side);
            let scaled_ctx = BenchCtx {
                grid,
                ..ctx.clone()
            };
            let placement = scaled_ctx.azul_mapper().map(&m.a, grid);
            let rep = run_pcg(&m, &placement, &SimConfig::azul(grid), &scaled_ctx);
            cells.push(format!("{:.0}", rep.gflops));
            gf.push(rep.gflops);
        }
        row(name, &cells);
        assert!(
            gf[1] > gf[0] * 0.8,
            "{name}: 4x tiles should not materially slow down"
        );
    }
    println!();
    println!("note: matrices are held fixed while tiles grow, so per-tile work shrinks;");
    println!("parallel (grid-like) matrices keep gaining, dependence-limited ones flatten.");
}
