//! Table V: area estimates at 7 nm, plus the Table III capacity figures.
//!
//! Paper: PEs 17.8 mm², routers 6.6 mm², SRAMs 115.2 mm², I/O 15 mm²,
//! total ≈ 155 mm² for 4096 tiles; 432 MB of SRAM.

use azul_bench::{header, row};
use azul_models::AreaModel;

fn main() {
    let model = AreaModel::default();
    header(
        "Table V — Azul area estimates (7 nm)",
        "4096 tiles: PEs 17.8 | routers 6.6 | SRAM 115.2 | I/O 15 | total 155 mm²",
    );
    row(
        "tiles",
        &[
            "PEs mm²".into(),
            "routers".into(),
            "SRAM".into(),
            "I/O".into(),
            "total".into(),
            "SRAM MB".into(),
        ],
    );
    for tiles in [256usize, 1024, 4096, 16384, 65536] {
        let b = model.breakdown(tiles);
        row(
            &tiles.to_string(),
            &[
                format!("{:.1}", b.pes),
                format!("{:.1}", b.routers),
                format!("{:.1}", b.srams),
                format!("{:.1}", b.io),
                format!("{:.1}", b.total()),
                format!("{:.0}", model.sram_capacity_mb(tiles)),
            ],
        );
    }
    let paper = model.breakdown(4096);
    assert!(
        (paper.total() - 155.0).abs() < 3.0,
        "Table V total must match"
    );
}
