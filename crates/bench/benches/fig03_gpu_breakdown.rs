//! Fig. 3: GPU runtime breakdown by kernel (SpTRSV / SpMV / vector ops)
//! for PCG on the representative matrices.
//!
//! Paper: SpMV + SpTRSV dominate everywhere; SpTRSV is the largest share
//! on most matrices.

use azul_bench::{gpu_overhead_scale, header, representative, row, BenchCtx};
use azul_models::gpu::{GpuModel, GpuWorkload};

fn main() {
    let ctx = BenchCtx::from_env();
    header(
        "Fig. 3 — GPU runtime breakdown by kernel",
        "SpTRSV + SpMV dominate; vector ops are a visible but minor slice",
    );
    row(
        "matrix",
        &["SpTRSV".into(), "SpMV".into(), "VectorOps".into()],
    );
    for m in representative(&ctx) {
        let model = GpuModel::with_overhead_scale(gpu_overhead_scale(&m));
        let t = model.pcg_iteration_time(&GpuWorkload::from_matrix(&m.a));
        let (spmv, sptrsv, vector) = t.fractions();
        row(
            m.name,
            &[
                format!("{:.1}%", sptrsv * 100.0),
                format!("{:.1}%", spmv * 100.0),
                format!("{:.1}%", vector * 100.0),
            ],
        );
        assert!(spmv + sptrsv > 0.5, "sparse kernels must dominate");
    }
}
