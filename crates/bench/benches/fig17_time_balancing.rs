//! Fig. 17: effect of time balancing on a single SpTRSV.
//!
//! The basic hypergraph objective balances *data*; time balancing buckets
//! operations into depth quantiles (Sec. IV-C) and balances each quantile
//! across PEs, removing the long tail of late work. The paper shows 3.5x
//! on the consph lower-triangle solve (q=5) at 4096 tiles.
//!
//! The effect requires locality-depth correlation: tiles that hold
//! spatially clustered data must end up holding temporally clustered
//! work. The paper's consph has a real FEM vertex ordering with that
//! property; our consph analog randomizes vertex ids (DESIGN.md §3),
//! which *accidentally* time-balances any locality-based partition. We
//! therefore demonstrate the mechanism on the workload where
//! locality-depth correlation is strongest — an uncolored 2-D Poisson
//! SpTRSV, whose dependence wavefront sweeps the grid diagonally — and
//! report the q=0/5/10 sweep. The speedup grows with problem scale
//! (EXPERIMENTS.md).

use azul_bench::header;
use azul_mapping::strategies::{AzulMapper, Mapper};
use azul_mapping::TileGrid;
use azul_sim::config::SimConfig;
use azul_sim::machine::run_kernel;
use azul_sim::program::Program;
use azul_sim::stats::KernelStats;
use azul_solver::ic0::ic0;
use azul_sparse::generate;

fn main() {
    // Fixed-size wavefront workload (independent of AZUL_BENCH_SCALE: this
    // is a mechanism demonstration at the largest size that runs quickly).
    let a = generate::grid_laplacian_2d(128, 128);
    let l = ic0(&a).expect("IC(0) on the Poisson matrix");
    let grid = TileGrid::square(8);
    let b: Vec<f64> = (0..a.rows()).map(|i| 1.0 + (i % 5) as f64).collect();

    let run = |mapper: &AzulMapper, trace: bool| -> KernelStats {
        let mut cfg = SimConfig::azul(grid);
        if trace {
            cfg.trace_interval = 400;
        }
        let placement = mapper.map(&a, grid);
        let prog = Program::compile_sptrsv_lower(&l, &a, &placement);
        run_kernel(&cfg, &prog, &b).1
    };

    let s_nnz = run(&AzulMapper::without_time_balancing(), true);
    let s_q5 = run(&AzulMapper::default(), true);
    let s_q10 = run(
        &AzulMapper {
            quantiles: 10,
            ..Default::default()
        },
        false,
    );

    header(
        "Fig. 17 — issued operations over time, SpTRSV (wavefront workload)",
        "time balancing removes the long tail of late instructions; 3.5x at paper scale",
    );
    println!("nonzero-balanced: {} cycles", s_nnz.cycles);
    for (c, ops) in &s_nnz.trace {
        println!("  nnz-balance   cycle {c:>8}  ops {ops}");
    }
    println!("time-balanced (q=5): {} cycles", s_q5.cycles);
    for (c, ops) in &s_q5.trace {
        println!("  time-balance  cycle {c:>8}  ops {ops}");
    }
    let sp5 = s_nnz.cycles as f64 / s_q5.cycles as f64;
    let sp10 = s_nnz.cycles as f64 / s_q10.cycles as f64;
    println!("speedup: q=5 {sp5:.2}x | q=10 {sp10:.2}x (paper: 3.5x at 4096 tiles)");
    assert!(
        sp5 > 1.2,
        "time balancing must visibly shorten the solve, got {sp5:.2}x"
    );

    // Ablation: row-edge weighting (reductions cost more than multicasts).
    let s_uniform = run(
        &AzulMapper {
            row_edge_weight: 1,
            ..Default::default()
        },
        false,
    );
    header(
        "Ablation — row-edge weight (Sec. IV-C)",
        "row nets weighted 2x col nets to discourage splitting reductions",
    );
    println!(
        "  uniform weights:  {} cycles, {} messages",
        s_uniform.cycles, s_uniform.messages
    );
    println!(
        "  weighted rows:    {} cycles, {} messages",
        s_q5.cycles, s_q5.messages
    );
}
