//! Two extension studies beyond the paper's figures:
//!
//! 1. **Partitioner preset ablation** (Sec. VI-D's closing remark: "if
//!    mapping time is important, users could opt for a lower quality
//!    mapping by using the default or speed presets") — quality vs fast
//!    preset: mapping time against end-to-end throughput.
//! 2. **Solver generality** (Sec. II-B: "other iterative solvers like
//!    GMRES and BiCGStab have the same kernels") — BiCGStab runs on the
//!    same compiled kernels; its kernel-class mix should mirror PCG's.

use azul_bench::{header, representative, row, run_pcg, BenchCtx};
use azul_mapping::strategies::{AzulMapper, Mapper};
use azul_sim::bicgstab::{BiCgStabSim, BiCgStabSimConfig};
use azul_sim::config::SimConfig;
use azul_sim::stats::KernelClass;
use std::time::Instant;

fn main() {
    let ctx = BenchCtx::from_env();
    let cfg = SimConfig::azul(ctx.grid);

    header(
        "Ablation — partitioner preset: quality vs fast (Sec. VI-D)",
        "the speed preset trades cut quality for mapping time",
    );
    row(
        "matrix",
        &[
            "qual map s".into(),
            "qual GF/s".into(),
            "fast map s".into(),
            "fast GF/s".into(),
        ],
    );
    let mut any_quality_win = false;
    for m in representative(&ctx) {
        let t0 = Instant::now();
        let quality_place = AzulMapper::default().map(&m.a, ctx.grid);
        let t_quality = t0.elapsed().as_secs_f64();
        let g_quality = run_pcg(&m, &quality_place, &cfg, &ctx).gflops;

        let t1 = Instant::now();
        let fast_place = AzulMapper::fast_default().map(&m.a, ctx.grid);
        let t_fast = t1.elapsed().as_secs_f64();
        let g_fast = run_pcg(&m, &fast_place, &cfg, &ctx).gflops;

        row(
            m.name,
            &[
                format!("{t_quality:.2}"),
                format!("{g_quality:.0}"),
                format!("{t_fast:.2}"),
                format!("{g_fast:.0}"),
            ],
        );
        assert!(
            t_fast < t_quality,
            "{}: fast preset must be faster to map",
            m.name
        );
        if g_quality > g_fast {
            any_quality_win = true;
        }
    }
    assert!(
        any_quality_win,
        "the quality preset should win throughput somewhere"
    );

    header(
        "Extension — BiCGStab on the same kernels (Sec. II-B)",
        "same SpMV/SpTRSV programs; kernel mix mirrors PCG",
    );
    row(
        "matrix",
        &[
            "PCG GF/s".into(),
            "BiCG GF/s".into(),
            "BiCG SpTRSV%".into(),
            "BiCG iters".into(),
        ],
    );
    for m in representative(&ctx) {
        let place = ctx.azul_mapper().map(&m.a, ctx.grid);
        let pcg_report = run_pcg(&m, &place, &cfg, &ctx);
        let bi = BiCgStabSim::build(&m.a, &place, &cfg).expect("IC(0) succeeds");
        let bi_report = bi.run(
            &m.b,
            &BiCgStabSimConfig {
                tol: 1e-8,
                max_iters: 500,
                timed_iterations: 1,
                ..Default::default()
            },
        );
        let total: f64 = bi_report.kernel_cycles.iter().sum::<f64>().max(1e-9);
        let tri_pct = bi_report.kernel_cycles[KernelClass::Sptrsv as usize] / total * 100.0;
        row(
            m.name,
            &[
                format!("{:.0}", pcg_report.gflops),
                format!("{:.0}", bi_report.gflops),
                format!("{tri_pct:.0}%"),
                bi_report.iterations.to_string(),
            ],
        );
        assert!(bi_report.converged, "{}: BiCGStab diverged", m.name);
        assert!(bi_report.gflops > 0.0);
    }
}
