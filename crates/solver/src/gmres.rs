//! Restarted GMRES — Table II lists GMRES as sharing Azul's kernels.

use crate::flops::{self, FlopBreakdown};
use crate::pcg::SolveOutcome;
use crate::precond::Preconditioner;
use crate::{Result, SolverError};
use azul_sparse::{dense, Csr};

/// Configuration for [`gmres`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmresConfig {
    /// Convergence tolerance on `||r||_2`.
    pub tol: f64,
    /// Restart length (Krylov subspace dimension per cycle).
    pub restart: usize,
    /// Cap on total inner iterations.
    pub max_iters: usize,
}

impl Default for GmresConfig {
    fn default() -> Self {
        GmresConfig {
            tol: 1e-10,
            restart: 30,
            max_iters: 5000,
        }
    }
}

/// Solves `A x = b` with right-preconditioned restarted GMRES (initial
/// guess 0).
///
/// # Panics
///
/// Panics if `b.len() != a.rows()`, `a` is not square, or
/// `config.restart == 0`.
pub fn gmres<M: Preconditioner + ?Sized>(
    a: &Csr,
    b: &[f64],
    m: &M,
    config: &GmresConfig,
) -> SolveOutcome {
    let n = a.rows();
    assert_eq!(a.cols(), n, "gmres needs a square matrix");
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert!(config.restart > 0, "restart length must be positive");
    match try_gmres(a, b, m, config) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`gmres`]: bad operands come back as
/// [`SolverError::Dimension`] and a degenerate least-squares system (a
/// vanished Givens denominator or a zero back-substitution pivot, which
/// the panicking API would turn into NaNs) as
/// [`SolverError::Breakdown`].
///
/// # Errors
///
/// [`SolverError::Dimension`] when `a` is not square, `b.len()` does not
/// match, or `config.restart == 0`; [`SolverError::Breakdown`] when the
/// Hessenberg least-squares solve degenerates.
pub fn try_gmres<M: Preconditioner + ?Sized>(
    a: &Csr,
    b: &[f64],
    m: &M,
    config: &GmresConfig,
) -> Result<SolveOutcome> {
    let n = a.rows();
    if a.cols() != n {
        return Err(SolverError::Dimension(format!(
            "gmres needs a square matrix, got {}x{}",
            n,
            a.cols()
        )));
    }
    if b.len() != n {
        return Err(SolverError::Dimension(format!(
            "rhs length {} does not match matrix dimension {n}",
            b.len()
        )));
    }
    if config.restart == 0 {
        return Err(SolverError::Dimension(
            "restart length (Krylov subspace dimension) must be positive".into(),
        ));
    }

    let mut fl = FlopBreakdown::default();
    let mut x = vec![0.0; n];
    let mut total_iters = 0usize;
    let mut converged = false;

    'outer: while total_iters < config.max_iters {
        // r = b - A x
        let r = dense::sub(b, &a.spmv(&x));
        fl.spmv += flops::spmv_flops(a);
        fl.vector += n as u64;
        let beta = dense::norm2(&r);
        fl.vector += flops::dot_flops(n);
        if beta <= config.tol {
            converged = true;
            break;
        }
        let k_max = config.restart.min(config.max_iters - total_iters);

        // Arnoldi with modified Gram-Schmidt.
        let mut v: Vec<Vec<f64>> = Vec::with_capacity(k_max + 1);
        let mut v0 = r.clone();
        dense::scale(1.0 / beta, &mut v0);
        fl.vector += n as u64;
        v.push(v0);
        let mut h = vec![vec![0.0f64; k_max]; k_max + 1];
        // Givens rotation state.
        let mut cs = vec![0.0f64; k_max];
        let mut sn = vec![0.0f64; k_max];
        let mut g = vec![0.0f64; k_max + 1];
        g[0] = beta;
        let mut k_done = 0usize;

        for k in 0..k_max {
            // w = A M^-1 v_k
            let z = m.apply(&v[k]);
            fl.add(m.flops_per_apply());
            let mut w = a.spmv(&z);
            fl.spmv += flops::spmv_flops(a);
            for (j, vj) in v.iter().enumerate().take(k + 1) {
                let hjk = dense::dot(&w, vj);
                fl.vector += flops::dot_flops(n);
                h[j][k] = hjk;
                dense::axpy(-hjk, vj, &mut w);
                fl.vector += flops::axpy_flops(n);
            }
            let wnorm = dense::norm2(&w);
            fl.vector += flops::dot_flops(n);
            h[k + 1][k] = wnorm;

            // Apply accumulated Givens rotations to column k.
            for j in 0..k {
                let t = cs[j] * h[j][k] + sn[j] * h[j + 1][k];
                h[j + 1][k] = -sn[j] * h[j][k] + cs[j] * h[j + 1][k];
                h[j][k] = t;
            }
            // New rotation to zero h[k+1][k]: a vanished denominator means
            // the whole Hessenberg column is zero and no rotation exists.
            let denom = (h[k][k] * h[k][k] + h[k + 1][k] * h[k + 1][k]).sqrt();
            if denom == 0.0 {
                return Err(SolverError::Breakdown(format!(
                    "Givens rotation denominator vanished at inner step {k} \
                     (iteration {total_iters})"
                )));
            }
            cs[k] = h[k][k] / denom;
            sn[k] = h[k + 1][k] / denom;
            h[k][k] = denom;
            h[k + 1][k] = 0.0;
            g[k + 1] = -sn[k] * g[k];
            g[k] *= cs[k];

            total_iters += 1;
            k_done = k + 1;

            let res = g[k + 1].abs();
            if res <= config.tol || wnorm == 0.0 {
                update_solution(&mut x, &v, &h, &g, k_done, m, &mut fl)?;
                converged = res <= config.tol;
                if converged {
                    break 'outer;
                }
                continue 'outer;
            }
            let mut vk1 = w;
            dense::scale(1.0 / wnorm, &mut vk1);
            fl.vector += n as u64;
            v.push(vk1);
        }
        update_solution(&mut x, &v, &h, &g, k_done, m, &mut fl)?;
    }

    let final_residual = dense::norm2(&dense::sub(b, &a.spmv(&x)));
    let converged = converged || final_residual <= config.tol;
    Ok(SolveOutcome {
        x,
        iterations: total_iters,
        converged,
        status: if converged {
            crate::SolveStatus::Converged
        } else {
            crate::SolveStatus::MaxIters
        },
        final_residual,
        flops: fl,
        residual_history: Vec::new(),
    })
}

/// Back-solves the small triangular system and updates `x += M^-1 V y`.
///
/// # Errors
///
/// [`SolverError::Breakdown`] on a zero back-substitution pivot (the
/// Hessenberg triangle is singular).
fn update_solution<M: Preconditioner + ?Sized>(
    x: &mut [f64],
    v: &[Vec<f64>],
    h: &[Vec<f64>],
    g: &[f64],
    k: usize,
    m: &M,
    fl: &mut FlopBreakdown,
) -> Result<()> {
    if k == 0 {
        return Ok(());
    }
    let mut y = vec![0.0f64; k];
    for i in (0..k).rev() {
        let mut s = g[i];
        for (j, &yj) in y.iter().enumerate().skip(i + 1) {
            s -= h[i][j] * yj;
        }
        if h[i][i] == 0.0 {
            return Err(SolverError::Breakdown(format!(
                "zero pivot in the Hessenberg back-substitution at row {i}"
            )));
        }
        y[i] = s / h[i][i];
    }
    let n = x.len();
    let mut update = vec![0.0f64; n];
    for (j, &yj) in y.iter().enumerate() {
        dense::axpy(yj, &v[j], &mut update);
        fl.vector += flops::axpy_flops(n);
    }
    let z = m.apply(&update);
    fl.add(m.flops_per_apply());
    dense::axpy(1.0, &z, x);
    fl.vector += flops::axpy_flops(n);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{Identity, Jacobi};
    use azul_sparse::{generate, Coo};

    fn rhs(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 7 % 5) as f64) + 0.5).collect()
    }

    #[test]
    fn solves_spd_grid() {
        let a = generate::grid_laplacian_2d(8, 8);
        let b = rhs(a.rows());
        let out = gmres(&a, &b, &Identity, &GmresConfig::default());
        assert!(out.converged, "residual {}", out.final_residual);
        assert!(out.final_residual < 1e-8);
    }

    #[test]
    fn solves_nonsymmetric() {
        let base = generate::grid_laplacian_2d(6, 6);
        let mut coo = Coo::new(base.rows(), base.cols());
        for (r, c, v) in base.iter() {
            coo.push(r, c, if r > c { v * 0.5 } else { v }).unwrap();
        }
        let a = coo.to_csr();
        let b = rhs(a.rows());
        let out = gmres(&a, &b, &Identity, &GmresConfig::default());
        assert!(out.converged);
    }

    #[test]
    fn restart_shorter_than_convergence_still_works() {
        let a = generate::grid_laplacian_2d(10, 10);
        let b = rhs(a.rows());
        let out = gmres(
            &a,
            &b,
            &Identity,
            &GmresConfig {
                restart: 5,
                ..Default::default()
            },
        );
        assert!(out.converged, "residual {}", out.final_residual);
    }

    #[test]
    fn jacobi_preconditioning_converges() {
        let a = generate::fem_mesh_3d(150, 5, 2);
        let b = rhs(a.rows());
        let out = gmres(&a, &b, &Jacobi::new(&a), &GmresConfig::default());
        assert!(out.converged);
        assert!(out.flops.vector > 0);
    }

    #[test]
    fn try_gmres_matches_gmres_on_clean_runs() {
        let a = generate::grid_laplacian_2d(8, 8);
        let b = rhs(a.rows());
        let cfg = GmresConfig::default();
        let out = try_gmres(&a, &b, &Identity, &cfg).unwrap();
        let reference = gmres(&a, &b, &Identity, &cfg);
        assert!(out.converged);
        assert_eq!(out.x, reference.x, "paths diverged bit-for-bit");
        assert_eq!(out.iterations, reference.iterations);
    }

    #[test]
    fn try_gmres_rejects_bad_operands() {
        let a = generate::grid_laplacian_2d(4, 4);
        let short = vec![1.0; 3];
        assert!(matches!(
            try_gmres(&a, &short, &Identity, &GmresConfig::default()),
            Err(crate::SolverError::Dimension(_))
        ));
        let b = rhs(a.rows());
        assert!(matches!(
            try_gmres(
                &a,
                &b,
                &Identity,
                &GmresConfig {
                    restart: 0,
                    ..Default::default()
                }
            ),
            Err(crate::SolverError::Dimension(_))
        ));
        let rect = {
            let mut coo = Coo::new(3, 4);
            coo.push(0, 0, 1.0).unwrap();
            coo.to_csr()
        };
        assert!(matches!(
            try_gmres(&rect, &short, &Identity, &GmresConfig::default()),
            Err(crate::SolverError::Dimension(_))
        ));
    }

    #[test]
    fn try_gmres_reports_breakdown_on_zero_operator() {
        // A = 0: the first Arnoldi column is zero, so the Givens
        // denominator vanishes — a typed breakdown, not NaNs.
        let zero = {
            let mut coo = Coo::new(4, 4);
            coo.push(0, 0, 0.0).unwrap();
            coo.to_csr()
        };
        let b = vec![1.0; 4];
        assert!(matches!(
            try_gmres(&zero, &b, &Identity, &GmresConfig::default()),
            Err(crate::SolverError::Breakdown(_))
        ));
    }

    #[test]
    fn iteration_cap_respected() {
        let a = generate::grid_laplacian_2d(20, 20);
        let b = rhs(a.rows());
        let out = gmres(
            &a,
            &b,
            &Identity,
            &GmresConfig {
                max_iters: 4,
                tol: 1e-14,
                ..Default::default()
            },
        );
        assert!(out.iterations <= 4);
    }
}
