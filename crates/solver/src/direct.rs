//! Small dense direct solver, used as exact ground truth in tests.
//!
//! The paper contrasts iterative solvers with direct (factorization)
//! methods in Sec. II; this module provides a dense Cholesky
//! factorization for modest dimensions so integration tests can compare
//! iterative solutions against an exact solve.

use crate::{Result, SolverError};
use azul_sparse::Csr;

/// A dense Cholesky factorization `A = L L^T` of an SPD matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseCholesky {
    n: usize,
    /// Row-major lower-triangular factor.
    l: Vec<f64>,
}

impl DenseCholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Intended for validation at small `n`; cost is `O(n^3)` time and
    /// `O(n^2)` memory.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::Dimension`] for non-square input and
    /// [`SolverError::Breakdown`] if the matrix is not positive definite.
    pub fn factor(a: &Csr) -> Result<Self> {
        let n = a.rows();
        if a.cols() != n {
            return Err(SolverError::Dimension(format!(
                "dense cholesky needs a square matrix, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        // Densify.
        let mut m = vec![0.0f64; n * n];
        for (r, c, v) in a.iter() {
            m[r * n + c] = v;
        }
        // In-place lower Cholesky.
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut s = m[i * n + j];
                for k in 0..j {
                    s -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(SolverError::Breakdown(format!(
                            "non-positive pivot {s:.3e} at row {i}"
                        )));
                    }
                    l[i * n + i] = s.sqrt();
                } else {
                    l[i * n + j] = s / l[j * n + j];
                }
            }
        }
        Ok(DenseCholesky { n, l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` exactly via forward + backward substitution.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        assert_eq!(b.len(), n, "rhs length mismatch");
        // L y = b
        let mut y = vec![0.0f64; n];
        #[allow(clippy::needless_range_loop)] // index used across several structures
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[i * n + k] * y[k];
            }
            y[i] = s / self.l[i * n + i];
        }
        // L^T x = y
        let mut x = vec![0.0f64; n];
        #[allow(clippy::needless_range_loop)] // index used across several structures
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self.l[k * n + i] * x[k];
            }
            x[i] = s / self.l[i * n + i];
        }
        x
    }
}

/// Convenience: factor and solve in one call.
///
/// # Errors
///
/// See [`DenseCholesky::factor`].
pub fn dense_solve(a: &Csr, b: &[f64]) -> Result<Vec<f64>> {
    Ok(DenseCholesky::factor(a)?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use azul_sparse::{dense, generate, Coo};

    #[test]
    fn solves_small_exactly() {
        // A = [[4,1],[1,3]], b = [1,2] -> x = (1/11, 7/11)
        let a = Coo::from_triplets(2, 2, [(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)])
            .unwrap()
            .to_csr();
        let x = dense_solve(&a, &[1.0, 2.0]).unwrap();
        assert!((x[0] - 1.0 / 11.0).abs() < 1e-14);
        assert!((x[1] - 7.0 / 11.0).abs() < 1e-14);
    }

    #[test]
    fn agrees_with_spmv_roundtrip() {
        let a = generate::fem_mesh_3d(120, 5, 33);
        let x_true: Vec<f64> = (0..120).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let b = a.spmv(&x_true);
        let x = dense_solve(&a, &b).unwrap();
        assert!(dense::rel_l2_diff(&x, &x_true) < 1e-9);
    }

    #[test]
    fn matches_pcg_solution() {
        let a = generate::grid_laplacian_2d(8, 8);
        let b: Vec<f64> = (0..64).map(|i| 1.0 + (i % 3) as f64).collect();
        let exact = dense_solve(&a, &b).unwrap();
        let m = crate::precond::IncompleteCholesky::new(&a).unwrap();
        let iterative = crate::pcg(&a, &b, &m, &crate::PcgConfig::default());
        assert!(dense::rel_l2_diff(&iterative.x, &exact) < 1e-7);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Coo::from_triplets(2, 2, [(0, 0, 1.0), (0, 1, 5.0), (1, 0, 5.0), (1, 1, 1.0)])
            .unwrap()
            .to_csr();
        assert!(matches!(
            DenseCholesky::factor(&a),
            Err(SolverError::Breakdown(_))
        ));
    }

    #[test]
    fn rejects_rectangular() {
        let a = Coo::from_triplets(2, 3, [(0, 0, 1.0)]).unwrap().to_csr();
        assert!(matches!(
            DenseCholesky::factor(&a),
            Err(SolverError::Dimension(_))
        ));
    }
}
