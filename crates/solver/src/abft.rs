//! Algorithm-based fault tolerance (ABFT) checksums for the sparse
//! kernels, after Huang & Abraham.
//!
//! The whole premise of Azul is that the operator, factors and solver
//! vectors stay resident in distributed on-chip SRAM for the entire
//! solve — exactly the exposure window where a soft error becomes
//! *silent* data corruption. Loud symptoms (NaN, divergence, deadlock)
//! are already guarded; this module catches the quiet ones with an
//! invariant the kernels must preserve:
//!
//! * **SpMV** `y = A·x`: summing both sides against the all-ones vector
//!   gives `1ᵀy = (Aᵀ1)ᵀx = cᵀx`, where `c` is the *column-checksum*
//!   vector precomputed once per operator.
//! * **Lower SpTRSV** `L·x = b`: the same identity applied to the
//!   product, `cᵀx = 1ᵀ(Lx) = 1ᵀb`, so the solve is verified without
//!   re-running it.
//! * **Transpose SpTRSV** `Lᵀ·z = y`: `1ᵀ(Lᵀz) = (L·1)ᵀz = sᵀz` with
//!   `s` the *row-checksum* vector.
//!
//! The comparison is never exact: floating-point summation reorders, so
//! each check carries a rounding-aware bound built from the **absolute**
//! column/row sums (`|A|ᵀ1`, `|A|·1`) — the magnitude of everything that
//! was summed, scaled by a generous multiple of `n·ε`. A gap inside the
//! bound is indistinguishable from legitimate rounding (and perturbs the
//! result by no more than accumulated round-off, so it cannot produce a
//! wrong answer that the true-residual audit would miss); a gap outside
//! it is corruption.
//!
//! The checksum vectors are computed host-side at prepare/factor time
//! (`azul_core` carries one per cached `PreparedRung`) and each
//! verification is O(n) — negligible next to the kernels it guards, and
//! never charged simulated cycles (the cycle model prices the fault-free
//! pipeline, consistent with the recovery machinery).

use azul_sparse::Csr;

/// Safety multiplier on the `n·ε·magnitude` rounding bound. Generous on
/// purpose: a false positive would roll back a healthy solve, while a
/// borderline miss is harmless by construction (see module docs).
const SAFETY: f64 = 64.0;

/// One verification's verdict: the observed checksum gap and the
/// rounding-aware bound it must stay inside.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChecksumCheck {
    /// `|cᵀx − 1ᵀy|` (or the solve-form equivalent).
    pub gap: f64,
    /// Largest gap explainable by floating-point rounding.
    pub bound: f64,
}

impl ChecksumCheck {
    /// Whether the gap is inside the rounding bound. A NaN gap (corrupt
    /// state reached the reduction itself) always fails.
    pub fn ok(&self) -> bool {
        self.gap <= self.bound
    }
}

/// Huang–Abraham checksum vectors for one sparse operator: the signed
/// and absolute column sums (`Aᵀ1`, `|A|ᵀ1`) and row sums (`A·1`,
/// `|A|·1`), precomputed once and reused for every kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorChecksum {
    col_sums: Vec<f64>,
    abs_col_sums: Vec<f64>,
    row_sums: Vec<f64>,
    abs_row_sums: Vec<f64>,
}

impl OperatorChecksum {
    /// Precomputes the four checksum vectors in one pass over the CSR.
    pub fn new(a: &Csr) -> Self {
        let mut col_sums = vec![0.0; a.cols()];
        let mut abs_col_sums = vec![0.0; a.cols()];
        let mut row_sums = vec![0.0; a.rows()];
        let mut abs_row_sums = vec![0.0; a.rows()];
        for r in 0..a.rows() {
            // Summation order is row-major CSR order, fixed by the format.
            for (c, v) in a.row(r) {
                col_sums[c] += v;
                abs_col_sums[c] += v.abs();
                row_sums[r] += v;
                abs_row_sums[r] += v.abs();
            }
        }
        OperatorChecksum {
            col_sums,
            abs_col_sums,
            row_sums,
            abs_row_sums,
        }
    }

    /// Number of rows/columns the checksums describe.
    pub fn len(&self) -> usize {
        self.col_sums.len()
    }

    /// Whether the checksums describe an empty operator.
    pub fn is_empty(&self) -> bool {
        self.col_sums.is_empty()
    }

    /// The rounding-aware bound for a check whose summed magnitudes
    /// total `mag`, over vectors of length `n`.
    fn bound(n: usize, mag: f64) -> f64 {
        SAFETY * (n.max(2) as f64) * f64::EPSILON * mag + f64::MIN_POSITIVE
    }

    /// Verifies `y = A·x` via `1ᵀy = cᵀx`.
    pub fn verify_spmv(&self, x: &[f64], y: &[f64]) -> ChecksumCheck {
        let (mut cx, mut mag_cx) = (0.0, 0.0);
        // Summation is in index order; both sides accumulate the same way.
        for ((c, ac), xi) in self.col_sums.iter().zip(&self.abs_col_sums).zip(x) {
            cx += c * xi;
            mag_cx += ac * xi.abs();
        }
        let (mut sy, mut mag_y) = (0.0, 0.0);
        for v in y {
            sy += v;
            mag_y += v.abs();
        }
        let gap = (cx - sy).abs();
        let bound = Self::bound(x.len(), mag_cx + mag_y);
        ChecksumCheck { gap, bound }
    }

    /// Verifies a lower triangular solve `L·x = b` via `cᵀx = 1ᵀb`,
    /// without re-running the solve.
    pub fn verify_solve(&self, x: &[f64], b: &[f64]) -> ChecksumCheck {
        Self::against(&self.col_sums, &self.abs_col_sums, x, b)
    }

    /// Verifies a transpose solve `Lᵀ·z = y` via `sᵀz = 1ᵀy`, with `s`
    /// the row sums.
    pub fn verify_solve_transpose(&self, z: &[f64], y: &[f64]) -> ChecksumCheck {
        Self::against(&self.row_sums, &self.abs_row_sums, z, y)
    }

    fn against(sums: &[f64], abs_sums: &[f64], x: &[f64], rhs: &[f64]) -> ChecksumCheck {
        let (mut cx, mut mag_cx) = (0.0, 0.0);
        // Summation is in index order; both sides accumulate the same way.
        for ((s, abs), xi) in sums.iter().zip(abs_sums).zip(x) {
            cx += s * xi;
            mag_cx += abs * xi.abs();
        }
        let (mut sb, mut mag_b) = (0.0, 0.0);
        for v in rhs {
            sb += v;
            mag_b += v.abs();
        }
        let gap = (cx - sb).abs();
        let bound = Self::bound(x.len(), mag_cx + mag_b);
        ChecksumCheck { gap, bound }
    }

    /// Bit-exact equality against checksums freshly recomputed from
    /// `a` — the scrub predicate for cached prepare artifacts. The
    /// recomputation is deterministic (same CSR order, same summation
    /// order), so a healthy artifact compares equal bit for bit; any
    /// divergence means the stored operator or the stored checksums
    /// were corrupted after insertion.
    pub fn matches(&self, a: &Csr) -> bool {
        *self == OperatorChecksum::new(a)
    }

    /// Fault-injection hook: flips one bit of the stored column-checksum
    /// payload at `index`, modeling an artifact corrupted in host memory
    /// after insertion. Used by the scrub tests and the detection
    /// coverage campaign; a production path never calls this.
    pub fn flip_bit(&mut self, index: usize, bit: u32) {
        let idx = index % self.col_sums.len().max(1);
        if let Some(v) = self.col_sums.get_mut(idx) {
            *v = f64::from_bits(v.to_bits() ^ (1u64 << (bit % 64)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use azul_sparse::{dense, generate};

    fn x_of(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 29 % 13) as f64) / 13.0 - 0.4)
            .collect()
    }

    #[test]
    fn clean_spmv_passes() {
        let a = generate::grid_laplacian_2d(14, 14);
        let cs = OperatorChecksum::new(&a);
        let x = x_of(a.rows());
        let y = a.spmv(&x);
        let check = cs.verify_spmv(&x, &y);
        assert!(check.ok(), "gap {} > bound {}", check.gap, check.bound);
    }

    #[test]
    fn corrupted_spmv_is_caught() {
        let a = generate::grid_laplacian_2d(14, 14);
        let cs = OperatorChecksum::new(&a);
        let x = x_of(a.rows());
        let mut y = a.spmv(&x);
        // A high-mantissa single-bit flip on one output value.
        y[17] = f64::from_bits(y[17].to_bits() ^ (1 << 60));
        let check = cs.verify_spmv(&x, &y);
        assert!(!check.ok(), "gap {} <= bound {}", check.gap, check.bound);
    }

    #[test]
    fn clean_trisolves_pass_and_corrupt_ones_fail() {
        let a = generate::grid_laplacian_2d(12, 12);
        let l = crate::ic0::ic0(&a).expect("ic0 on an SPD grid");
        let cs = OperatorChecksum::new(&l);
        let b = x_of(a.rows());
        let y = crate::kernels::sptrsv_lower(&l, &b);
        let z = crate::kernels::sptrsv_lower_transpose(&l, &y);
        assert!(cs.verify_solve(&y, &b).ok());
        assert!(cs.verify_solve_transpose(&z, &y).ok());

        let mut bad = y.clone();
        bad[3] = f64::from_bits(bad[3].to_bits() ^ (1 << 58));
        assert!(!cs.verify_solve(&bad, &b).ok());
        assert!(!cs.verify_solve_transpose(&z, &bad).ok());
    }

    #[test]
    fn bound_scales_with_magnitude_not_direction() {
        let a = generate::grid_laplacian_2d(10, 10);
        let cs = OperatorChecksum::new(&a);
        let x: Vec<f64> = x_of(a.rows()).iter().map(|v| v * 1e8).collect();
        let y = a.spmv(&x);
        let check = cs.verify_spmv(&x, &y);
        assert!(check.ok(), "gap {} > bound {}", check.gap, check.bound);
        assert!(check.bound > 0.0 && check.bound.is_finite());
    }

    #[test]
    fn nan_gap_never_verifies() {
        let a = generate::tridiagonal(6);
        let cs = OperatorChecksum::new(&a);
        let x = vec![1.0; 6];
        let mut y = a.spmv(&x);
        y[0] = f64::NAN;
        assert!(!cs.verify_spmv(&x, &y).ok());
    }

    #[test]
    fn scrub_matches_detects_flipped_bits() {
        let a = generate::grid_laplacian_2d(8, 8);
        let mut cs = OperatorChecksum::new(&a);
        assert!(cs.matches(&a));
        cs.flip_bit(5, 40);
        assert!(!cs.matches(&a));
    }

    #[test]
    fn spmv_residual_identity_sanity() {
        // The invariant the check rests on: 1ᵀ(b − Ax) = 1ᵀb − cᵀx.
        let a = generate::grid_laplacian_2d(9, 9);
        let cs = OperatorChecksum::new(&a);
        let x = x_of(a.rows());
        let b = x_of(a.rows()).iter().map(|v| v + 1.0).collect::<Vec<_>>();
        let r = dense::sub(&b, &a.spmv(&x));
        // reduction-order: iterator order over fixed-length vectors.
        let lhs = r.iter().sum::<f64>();
        let sb = b.iter().sum::<f64>();
        // reduction-order: index order, matching the verify kernels.
        let cx = (0..x.len()).map(|i| cs.col_sums[i] * x[i]).sum::<f64>();
        let rhs = sb - cx;
        assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
    }
}
