//! Incomplete Cholesky factorization with zero fill-in, IC(0).
//!
//! Produces a lower-triangular `L` with the sparsity pattern of `tril(A)`
//! such that `L L^T ≈ A`. This is the preconditioner used throughout the
//! paper's evaluation ("PCG with an incomplete-Cholesky preconditioner").

use crate::{Result, SolverError};
use azul_sparse::{Coo, Csr};

/// Computes the IC(0) factor of a symmetric positive-definite matrix.
///
/// If a pivot becomes non-positive (IC(0) can break down even on SPD
/// input), the factorization is retried on the diagonally shifted matrix
/// `A + alpha * diag(A)` with geometrically increasing `alpha` — the
/// standard Manteuffel shift strategy.
///
/// # Errors
///
/// Returns [`SolverError::Dimension`] for non-square input, and
/// [`SolverError::Breakdown`] if shifting up to `alpha = 1.0` still fails.
pub fn ic0(a: &Csr) -> Result<Csr> {
    if a.rows() != a.cols() {
        return Err(SolverError::Dimension(format!(
            "ic0 needs a square matrix, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    let mut alpha = 0.0f64;
    loop {
        match ic0_attempt(a, alpha) {
            Ok(l) => return Ok(l),
            Err(_) if alpha < 1.0 => {
                alpha = if alpha == 0.0 { 1e-3 } else { alpha * 10.0 };
            }
            Err(e) => return Err(e),
        }
    }
}

/// One IC(0) attempt on `A + alpha * diag(A)`.
fn ic0_attempt(a: &Csr, alpha: f64) -> Result<Csr> {
    let n = a.rows();
    let tril = a.lower_triangle();
    // Mutable copy of the lower-triangle values that we factor in place.
    let mut l = tril.clone();
    if alpha > 0.0 {
        // Shift the diagonal.
        let shift: Vec<f64> = (0..n).map(|i| a.get(i, i) * alpha).collect();
        let row_ptr = l.row_ptr().to_vec();
        let col_idx = l.col_idx().to_vec();
        let vals = l.values_mut();
        for i in 0..n {
            for p in row_ptr[i]..row_ptr[i + 1] {
                if col_idx[p] == i {
                    vals[p] += shift[i];
                }
            }
        }
    }

    let row_ptr = l.row_ptr().to_vec();
    let col_idx = l.col_idx().to_vec();

    // Row-by-row up-looking factorization restricted to the pattern.
    for i in 0..n {
        let row_lo = row_ptr[i];
        let row_hi = row_ptr[i + 1];
        if row_hi == row_lo || col_idx[row_hi - 1] != i {
            return Err(SolverError::Breakdown(format!(
                "missing diagonal entry in row {i}"
            )));
        }
        for p in row_lo..row_hi {
            let j = col_idx[p];
            // sum_{k < j} L[i][k] * L[j][k], over the pattern intersection.
            let mut s = 0.0;
            {
                let vals = l.values();
                let (mut pi, mut pj) = (row_lo, row_ptr[j]);
                let (ei, ej) = (row_hi, row_ptr[j + 1]);
                while pi < ei && pj < ej {
                    let (ci, cj) = (col_idx[pi], col_idx[pj]);
                    if ci >= j || cj >= j {
                        break;
                    }
                    match ci.cmp(&cj) {
                        std::cmp::Ordering::Less => pi += 1,
                        std::cmp::Ordering::Greater => pj += 1,
                        std::cmp::Ordering::Equal => {
                            s += vals[pi] * vals[pj];
                            pi += 1;
                            pj += 1;
                        }
                    }
                }
            }
            if j < i {
                // Off-diagonal: L[i][j] = (A[i][j] - s) / L[j][j]
                let djj = diag_value(&l, &row_ptr, &col_idx, j);
                let vals = l.values_mut();
                vals[p] = (vals[p] - s) / djj;
            } else {
                // Diagonal: L[i][i] = sqrt(A[i][i] - s)
                let vals = l.values_mut();
                let d = vals[p] - s;
                if d <= 0.0 {
                    return Err(SolverError::Breakdown(format!(
                        "non-positive pivot {d:.3e} at row {i}"
                    )));
                }
                vals[p] = d.sqrt();
            }
        }
    }
    Ok(l)
}

/// Reads `L[j][j]`, which the up-looking order has already finalized.
fn diag_value(l: &Csr, row_ptr: &[usize], col_idx: &[usize], j: usize) -> f64 {
    let p = row_ptr[j + 1] - 1;
    debug_assert_eq!(col_idx[p], j, "diagonal must be last entry of row");
    l.values()[p]
}

/// Builds the product `L L^T` (for testing the factorization quality).
pub fn llt(l: &Csr) -> Csr {
    let n = l.rows();
    let lt = l.transpose();
    let mut coo = Coo::new(n, n);
    // (L L^T)[i][j] = sum_k L[i][k] * L[j][k]; iterate over columns of L^T.
    for i in 0..n {
        let li: Vec<(usize, f64)> = l.row(i).collect();
        // For each j, intersect row i and row j of L. Dense accumulation
        // over the rows reachable from row i's pattern keeps this sparse.
        let mut touched: Vec<usize> = Vec::new();
        let mut acc: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
        for &(k, vik) in &li {
            for (j, vjk) in lt.row(k) {
                let e = acc.entry(j).or_insert(0.0);
                if *e == 0.0 {
                    touched.push(j);
                }
                *e += vik * vjk;
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for j in touched {
            let v = acc[&j];
            if v != 0.0 {
                coo.push(i, j, v).expect("indices in bounds");
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use azul_sparse::{dense, generate};

    #[test]
    fn exact_on_tridiagonal_pattern() {
        // Tridiagonal SPD: IC(0) pattern equals the exact Cholesky pattern,
        // so L L^T must equal A exactly.
        let a = generate::tridiagonal(20);
        let l = ic0(&a).unwrap();
        let prod = llt(&l);
        for (r, c, v) in a.iter() {
            assert!(
                (prod.get(r, c) - v).abs() < 1e-12,
                "mismatch at ({r},{c}): {} vs {v}",
                prod.get(r, c)
            );
        }
    }

    #[test]
    fn factor_is_lower_triangular_with_positive_diagonal() {
        let a = generate::fem_mesh_3d(150, 6, 31);
        let l = ic0(&a).unwrap();
        for (r, c, _) in l.iter() {
            assert!(c <= r, "entry above diagonal at ({r},{c})");
        }
        for i in 0..l.rows() {
            assert!(l.get(i, i) > 0.0, "non-positive diagonal at {i}");
        }
    }

    #[test]
    fn pattern_matches_lower_triangle_of_a() {
        let a = generate::grid_laplacian_2d(7, 7);
        let l = ic0(&a).unwrap();
        let tril = a.lower_triangle();
        assert_eq!(l.row_ptr(), tril.row_ptr());
        assert_eq!(l.col_idx(), tril.col_idx());
    }

    #[test]
    fn approximates_a_on_grid() {
        let a = generate::grid_laplacian_2d(10, 10);
        let l = ic0(&a).unwrap();
        let prod = llt(&l);
        // IC(0) is inexact off-pattern, but on-pattern entries of A are
        // reproduced reasonably; check overall relative Frobenius error.
        let mut num = 0.0;
        let mut den = 0.0;
        for (r, c, v) in a.iter() {
            let d = prod.get(r, c) - v;
            num += d * d;
            den += v * v;
        }
        assert!((num / den).sqrt() < 0.2, "on-pattern error too large");
    }

    #[test]
    fn preconditioner_application_is_spd() {
        // M^-1 = (L L^T)^-1 must be symmetric positive definite: the PCG
        // correctness requirement for any preconditioner.
        let a = generate::fem_mesh_3d(100, 5, 7);
        let l = ic0(&a).unwrap();
        let apply = |r: &[f64]| {
            let y = crate::kernels::sptrsv_lower(&l, r);
            crate::kernels::sptrsv_lower_transpose(&l, &y)
        };
        let u: Vec<f64> = (0..100).map(|i| ((i % 13) as f64) / 13.0 - 0.4).collect();
        let v: Vec<f64> = (0..100)
            .map(|i| ((i * 7 % 11) as f64) / 11.0 - 0.5)
            .collect();
        // Symmetry: u . M^-1 v == v . M^-1 u
        let lhs = dense::dot(&u, &apply(&v));
        let rhs = dense::dot(&v, &apply(&u));
        assert!((lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0));
        // Positive definiteness: u . M^-1 u > 0
        assert!(dense::dot(&u, &apply(&u)) > 0.0);
    }

    #[test]
    fn non_square_rejected() {
        let a = azul_sparse::Coo::from_triplets(2, 3, [(0, 0, 1.0)])
            .unwrap()
            .to_csr();
        assert!(matches!(ic0(&a), Err(SolverError::Dimension(_))));
    }
}
