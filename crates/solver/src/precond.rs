//! Preconditioners (Table II).
//!
//! A preconditioner approximates `A^{-1}`: PCG converges in fewer
//! iterations when each residual is passed through
//! [`Preconditioner::apply`]. The kernel content of each preconditioner is
//! what matters for Azul: Jacobi adds vector work, while symmetric
//! Gauss-Seidel / SSOR / incomplete Cholesky add the two SpTRSVs that
//! dominate PCG runtime (Fig. 3).

use crate::flops::{self, FlopBreakdown};
use crate::ic0::ic0;
use crate::kernels::{sptrsv_lower, sptrsv_lower_transpose};
use crate::{Result, SolverError};
use azul_sparse::Csr;

/// A symmetric preconditioner `M ≈ A`, applied as `z = M^{-1} r`.
pub trait Preconditioner {
    /// Applies the preconditioner to a residual.
    fn apply(&self, r: &[f64]) -> Vec<f64>;

    /// FLOPs of one application, broken down by kernel.
    fn flops_per_apply(&self) -> FlopBreakdown;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// The lower-triangular factor driving SpTRSV work, if the
    /// preconditioner has one (used by the accelerator pipeline to compile
    /// triangular-solve kernels).
    fn triangular_factor(&self) -> Option<&Csr> {
        None
    }

    /// The residual length this preconditioner was built for, if fixed
    /// (dimensionless preconditioners like [`Identity`] return `None`).
    fn dim(&self) -> Option<usize> {
        self.triangular_factor().map(Csr::rows)
    }

    /// Dimension-checked [`apply`](Preconditioner::apply): a mismatched
    /// residual returns [`SolverError::Dimension`] instead of silently
    /// truncating or panicking inside a triangular solve.
    ///
    /// # Errors
    ///
    /// [`SolverError::Dimension`] when `r.len()` disagrees with
    /// [`dim`](Preconditioner::dim).
    fn try_apply(&self, r: &[f64]) -> Result<Vec<f64>> {
        if let Some(n) = self.dim() {
            if r.len() != n {
                return Err(SolverError::Dimension(format!(
                    "preconditioner `{}` built for n = {n} applied to a length-{} residual",
                    self.name(),
                    r.len()
                )));
            }
        }
        Ok(self.apply(r))
    }
}

/// No preconditioning (`M = I`); turns PCG into plain CG.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Identity;

impl Preconditioner for Identity {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        r.to_vec()
    }

    fn flops_per_apply(&self) -> FlopBreakdown {
        FlopBreakdown::default()
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

/// Diagonal (Jacobi) preconditioner: `z_i = r_i / A_ii`.
#[derive(Debug, Clone, PartialEq)]
pub struct Jacobi {
    inv_diag: Vec<f64>,
}

impl Jacobi {
    /// Builds the preconditioner from the matrix diagonal.
    ///
    /// # Panics
    ///
    /// Panics if any diagonal entry is zero.
    pub fn new(a: &Csr) -> Self {
        let inv_diag: Vec<f64> = a
            .diagonal()
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                assert!(d != 0.0, "zero diagonal at row {i}");
                1.0 / d
            })
            .collect();
        Jacobi { inv_diag }
    }
}

impl Preconditioner for Jacobi {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        r.iter().zip(&self.inv_diag).map(|(x, d)| x * d).collect()
    }

    fn flops_per_apply(&self) -> FlopBreakdown {
        FlopBreakdown {
            vector: self.inv_diag.len() as u64,
            ..Default::default()
        }
    }

    fn name(&self) -> &'static str {
        "jacobi"
    }

    fn dim(&self) -> Option<usize> {
        Some(self.inv_diag.len())
    }
}

/// Symmetric Gauss-Seidel preconditioner:
/// `M = (D + L) D^{-1} (D + U)` where `A = L + D + U`.
///
/// Application costs two SpTRSVs and one diagonal scaling, exactly the
/// kernel mix of Table II's "Sym. Gauss-Seidel" row.
#[derive(Debug, Clone, PartialEq)]
pub struct SymmetricGaussSeidel {
    lower: Csr, // D + L
    diag: Vec<f64>,
}

impl SymmetricGaussSeidel {
    /// Builds the preconditioner from a symmetric matrix.
    ///
    /// # Panics
    ///
    /// Panics if any diagonal entry is zero.
    pub fn new(a: &Csr) -> Self {
        let diag = a.diagonal();
        assert!(
            diag.iter().all(|&d| d != 0.0),
            "symmetric Gauss-Seidel needs a full diagonal"
        );
        SymmetricGaussSeidel {
            lower: a.lower_triangle(),
            diag,
        }
    }
}

impl Preconditioner for SymmetricGaussSeidel {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        // (D + L) y = r ; w = D y ; (D + U) z = w, with U = L^T.
        let y = sptrsv_lower(&self.lower, r);
        let w: Vec<f64> = y.iter().zip(&self.diag).map(|(a, b)| a * b).collect();
        sptrsv_lower_transpose(&self.lower, &w)
    }

    fn flops_per_apply(&self) -> FlopBreakdown {
        FlopBreakdown {
            sptrsv: 2 * flops::sptrsv_flops(self.lower.nnz()),
            vector: self.diag.len() as u64,
            ..Default::default()
        }
    }

    fn name(&self) -> &'static str {
        "symmetric-gauss-seidel"
    }

    fn triangular_factor(&self) -> Option<&Csr> {
        Some(&self.lower)
    }
}

/// SSOR preconditioner with relaxation factor `omega`:
/// `M = (D/ω + L) (ω/(2-ω))⁻¹·... ` — applied with two triangular solves.
#[derive(Debug, Clone, PartialEq)]
pub struct Ssor {
    lower_scaled: Csr, // D/omega + L
    diag: Vec<f64>,
    omega: f64,
}

impl Ssor {
    /// Builds an SSOR preconditioner.
    ///
    /// # Panics
    ///
    /// Panics if `omega` is outside `(0, 2)` or a diagonal entry is zero.
    pub fn new(a: &Csr, omega: f64) -> Self {
        assert!(
            omega > 0.0 && omega < 2.0,
            "SSOR requires 0 < omega < 2, got {omega}"
        );
        let diag = a.diagonal();
        assert!(diag.iter().all(|&d| d != 0.0), "SSOR needs a full diagonal");
        let mut lower_scaled = a.lower_triangle();
        let row_ptr = lower_scaled.row_ptr().to_vec();
        let col_idx = lower_scaled.col_idx().to_vec();
        #[allow(clippy::needless_range_loop)] // indexes several arrays
        for i in 0..a.rows() {
            for p in row_ptr[i]..row_ptr[i + 1] {
                if col_idx[p] == i {
                    lower_scaled.values_mut()[p] = diag[i] / omega;
                }
            }
        }
        Ssor {
            lower_scaled,
            diag,
            omega,
        }
    }

    /// The relaxation factor.
    pub fn omega(&self) -> f64 {
        self.omega
    }
}

impl Preconditioner for Ssor {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        // M^{-1} r with M = (2-ω)/ω * (D/ω + L) (D/ω)^{-1} (D/ω + L)^T ... we
        // apply the standard form: solve (D/ω + L) y = r, scale by D/ω,
        // solve (D/ω + L)^T z = (D/ω) y, then scale by ω/(2-ω)... The
        // constant factor does not change PCG's search directions but keeps
        // M consistent with its definition.
        let y = sptrsv_lower(&self.lower_scaled, r);
        let w: Vec<f64> = y
            .iter()
            .zip(&self.diag)
            .map(|(v, d)| v * d / self.omega)
            .collect();
        let mut z = sptrsv_lower_transpose(&self.lower_scaled, &w);
        let c = self.omega / (2.0 - self.omega);
        for zi in &mut z {
            *zi *= c;
        }
        z
    }

    fn flops_per_apply(&self) -> FlopBreakdown {
        FlopBreakdown {
            sptrsv: 2 * flops::sptrsv_flops(self.lower_scaled.nnz()),
            vector: 3 * self.diag.len() as u64,
            ..Default::default()
        }
    }

    fn name(&self) -> &'static str {
        "ssor"
    }

    fn triangular_factor(&self) -> Option<&Csr> {
        Some(&self.lower_scaled)
    }
}

/// Incomplete-Cholesky IC(0) preconditioner, the paper's default:
/// `M = L L^T` with `L` from [`ic0`].
#[derive(Debug, Clone, PartialEq)]
pub struct IncompleteCholesky {
    l: Csr,
}

impl IncompleteCholesky {
    /// Factors `a` with IC(0).
    ///
    /// # Errors
    ///
    /// Propagates factorization breakdowns from [`ic0`].
    pub fn new(a: &Csr) -> Result<Self> {
        Ok(IncompleteCholesky { l: ic0(a)? })
    }

    /// The lower-triangular factor.
    pub fn factor(&self) -> &Csr {
        &self.l
    }
}

impl Preconditioner for IncompleteCholesky {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        // z = L^-T (L^-1 r), Listing 1 line 9.
        let y = sptrsv_lower(&self.l, r);
        sptrsv_lower_transpose(&self.l, &y)
    }

    fn flops_per_apply(&self) -> FlopBreakdown {
        FlopBreakdown {
            sptrsv: 2 * flops::sptrsv_flops(self.l.nnz()),
            ..Default::default()
        }
    }

    fn name(&self) -> &'static str {
        "incomplete-cholesky"
    }

    fn triangular_factor(&self) -> Option<&Csr> {
        Some(&self.l)
    }
}

/// The symmetric Gauss-Seidel preconditioner in *factored* form:
/// a lower-triangular `F` with `F F^T = (D + L) D^{-1} (D + U)`, sharing
/// `tril(a)`'s sparsity pattern.
///
/// This is the form Azul executes: the accelerator's preconditioner step
/// is two triangular solves with one factor (Listing 1), so any
/// preconditioner expressible as `F F^T` runs on the same hardware
/// kernels. `F = (D + L) D^{-1/2}`.
///
/// # Panics
///
/// Panics if the matrix is not square or a diagonal entry is not positive.
pub fn sgs_factor(a: &Csr) -> Csr {
    match try_sgs_factor(a) {
        Ok(f) => f,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`sgs_factor`]: a non-positive diagonal entry (the matrix is
/// not SPD) comes back as [`SolverError::Breakdown`] instead of a panic,
/// so a degradation ladder can step past SGS/SSOR deterministically.
///
/// # Errors
///
/// [`SolverError::Dimension`] for a non-square matrix,
/// [`SolverError::Breakdown`] for a non-positive diagonal entry.
pub fn try_sgs_factor(a: &Csr) -> Result<Csr> {
    try_scaled_lower_factor(a, 1.0)
}

/// The SSOR preconditioner in factored form:
/// `F = sqrt((2-omega)/omega) * (D/omega + L) * D^{-1/2}`, so that
/// `F F^T = (omega/(2-omega))^{-1} (D/omega + L) (D/omega)^{-1}... ` —
/// precisely the `M` whose inverse [`Ssor::apply`] applies.
///
/// # Panics
///
/// Panics if `omega` is outside `(0, 2)`, the matrix is not square, or a
/// diagonal entry is not positive.
pub fn ssor_factor(a: &Csr, omega: f64) -> Csr {
    assert!(
        omega > 0.0 && omega < 2.0,
        "SSOR requires 0 < omega < 2, got {omega}"
    );
    match try_scaled_lower_factor(a, omega) {
        Ok(f) => f,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`ssor_factor`]: see [`try_sgs_factor`].
///
/// # Errors
///
/// [`SolverError::Breakdown`] for an `omega` outside `(0, 2)` or a
/// non-positive diagonal entry; [`SolverError::Dimension`] for a
/// non-square matrix.
pub fn try_ssor_factor(a: &Csr, omega: f64) -> Result<Csr> {
    if !(omega > 0.0 && omega < 2.0) {
        return Err(SolverError::Breakdown(format!(
            "SSOR requires 0 < omega < 2, got {omega}"
        )));
    }
    try_scaled_lower_factor(a, omega)
}

/// The Jacobi preconditioner `M = D` in factored form: `F = D^{1/2}`
/// embedded in `tril(a)`'s sparsity pattern (off-diagonals zero), so
/// `F F^T = D` runs on the same two-SpTRSV hardware kernels as every
/// other rung of the preconditioner ladder.
///
/// # Errors
///
/// [`SolverError::Dimension`] for a non-square matrix,
/// [`SolverError::Breakdown`] for a non-positive diagonal entry (a
/// negative diagonal has no real square root).
pub fn try_jacobi_factor(a: &Csr) -> Result<Csr> {
    if a.rows() != a.cols() {
        return Err(SolverError::Dimension(format!(
            "factor needs a square matrix, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    let diag = a.diagonal();
    if let Some((i, &d)) = diag.iter().enumerate().find(|(_, &d)| d <= 0.0) {
        return Err(SolverError::Breakdown(format!(
            "Jacobi factor needs a positive diagonal, got {d:.3e} at row {i}"
        )));
    }
    let mut f = a.lower_triangle();
    let row_ptr = f.row_ptr().to_vec();
    let col_idx = f.col_idx().to_vec();
    let vals = f.values_mut();
    for i in 0..row_ptr.len() - 1 {
        for p in row_ptr[i]..row_ptr[i + 1] {
            vals[p] = if col_idx[p] == i { diag[i].sqrt() } else { 0.0 };
        }
    }
    Ok(f)
}

/// The identity preconditioner `M = I` in factored form: `F = I`
/// embedded in `tril(a)`'s sparsity pattern. Infallible for any square
/// matrix, which makes it the terminal rung of the preconditioner
/// ladder: `F F^T = I` always exists.
///
/// # Errors
///
/// [`SolverError::Dimension`] for a non-square matrix.
pub fn identity_factor(a: &Csr) -> Result<Csr> {
    if a.rows() != a.cols() {
        return Err(SolverError::Dimension(format!(
            "factor needs a square matrix, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    let mut f = a.lower_triangle();
    let row_ptr = f.row_ptr().to_vec();
    let col_idx = f.col_idx().to_vec();
    let vals = f.values_mut();
    for i in 0..row_ptr.len() - 1 {
        for p in row_ptr[i]..row_ptr[i + 1] {
            vals[p] = if col_idx[p] == i { 1.0 } else { 0.0 };
        }
    }
    Ok(f)
}

/// Shared construction: `sqrt((2-w)/w) * (D/w + L) * (D/w)^{-1/2}` (with
/// `w = 1` this reduces to `(D + L) D^{-1/2}`, the SGS factor).
fn try_scaled_lower_factor(a: &Csr, omega: f64) -> Result<Csr> {
    if a.rows() != a.cols() {
        return Err(SolverError::Dimension(format!(
            "factor needs a square matrix, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    let diag = a.diagonal();
    if let Some((i, &d)) = diag.iter().enumerate().find(|(_, &d)| d <= 0.0) {
        return Err(SolverError::Breakdown(format!(
            "SPD matrix needs a positive diagonal, got {d:.3e} at row {i}"
        )));
    }
    let scale = ((2.0 - omega) / omega).sqrt();
    let mut f = a.lower_triangle();
    let row_ptr = f.row_ptr().to_vec();
    let col_idx = f.col_idx().to_vec();
    let vals = f.values_mut();
    for i in 0..row_ptr.len() - 1 {
        for p in row_ptr[i]..row_ptr[i + 1] {
            let j = col_idx[p];
            let dj_over_w = diag[j] / omega;
            if j == i {
                // Diagonal of (D/w + L) is D_ii/w; times (D_ii/w)^{-1/2}.
                vals[p] = scale * dj_over_w.sqrt();
            } else {
                vals[p] = scale * vals[p] / dj_over_w.sqrt();
            }
        }
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use azul_sparse::{dense, generate};

    #[test]
    fn identity_is_noop() {
        let r = vec![1.0, -2.0, 3.0];
        assert_eq!(Identity.apply(&r), r);
        assert_eq!(Identity.flops_per_apply().total(), 0);
    }

    #[test]
    fn jacobi_divides_by_diagonal() {
        let a = generate::tridiagonal(4); // diag = 2
        let j = Jacobi::new(&a);
        assert_eq!(j.apply(&[2.0, 4.0, 6.0, 8.0]), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(j.flops_per_apply().vector, 4);
    }

    #[test]
    fn sgs_apply_matches_explicit_solves() {
        let a = generate::grid_laplacian_2d(5, 5);
        let m = SymmetricGaussSeidel::new(&a);
        let r: Vec<f64> = (0..25).map(|i| (i as f64 * 0.3).sin()).collect();
        let z = m.apply(&r);
        // Verify M z = r with M = (D+L) D^-1 (D+U).
        let u = a.lower_triangle().transpose();
        let dz = u.spmv(&z); // (D+U) z
        let inv_d: Vec<f64> = a.diagonal().iter().map(|d| 1.0 / d).collect();
        let w: Vec<f64> = dz.iter().zip(&inv_d).map(|(v, d)| v * d).collect();
        let mz = a.lower_triangle().spmv(&w);
        assert!(dense::max_abs_diff(&mz, &r) < 1e-10);
    }

    #[test]
    fn ssor_reduces_to_sgs_at_omega_one() {
        let a = generate::grid_laplacian_2d(4, 4);
        let sgs = SymmetricGaussSeidel::new(&a);
        let ssor = Ssor::new(&a, 1.0);
        let r: Vec<f64> = (0..16).map(|i| (i as f64) / 16.0).collect();
        assert!(dense::max_abs_diff(&sgs.apply(&r), &ssor.apply(&r)) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "0 < omega < 2")]
    fn ssor_rejects_bad_omega() {
        let a = generate::tridiagonal(3);
        Ssor::new(&a, 2.5);
    }

    #[test]
    fn ic_apply_approximates_inverse() {
        let a = generate::fem_mesh_3d(100, 5, 1);
        let m = IncompleteCholesky::new(&a).unwrap();
        let x: Vec<f64> = (0..100).map(|i| ((i % 11) as f64) - 5.0).collect();
        let z = m.apply(&a.spmv(&x));
        assert!(dense::rel_l2_diff(&z, &x) < 0.5);
        assert!(m.triangular_factor().is_some());
    }

    #[test]
    fn sgs_factor_reproduces_sgs_application() {
        // F F^T = M_sgs, so F^-T F^-1 r == SymmetricGaussSeidel::apply(r).
        let a = generate::fem_mesh_3d(120, 5, 8);
        let f = sgs_factor(&a);
        let sgs = SymmetricGaussSeidel::new(&a);
        let r: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.37).sin()).collect();
        let y = sptrsv_lower(&f, &r);
        let z = sptrsv_lower_transpose(&f, &y);
        assert!(dense::max_abs_diff(&z, &sgs.apply(&r)) < 1e-9);
    }

    #[test]
    fn ssor_factor_reproduces_ssor_application() {
        let a = generate::grid_laplacian_2d(7, 7);
        let omega = 1.3;
        let f = ssor_factor(&a, omega);
        let ssor = Ssor::new(&a, omega);
        let r: Vec<f64> = (0..a.rows()).map(|i| 1.0 - (i % 4) as f64).collect();
        let y = sptrsv_lower(&f, &r);
        let z = sptrsv_lower_transpose(&f, &y);
        assert!(dense::max_abs_diff(&z, &ssor.apply(&r)) < 1e-9);
    }

    #[test]
    fn factors_share_tril_pattern() {
        let a = generate::fem_mesh_3d(80, 4, 3);
        let tril = a.lower_triangle();
        for f in [
            sgs_factor(&a),
            ssor_factor(&a, 0.8),
            try_jacobi_factor(&a).unwrap(),
            identity_factor(&a).unwrap(),
        ] {
            assert_eq!(f.row_ptr(), tril.row_ptr());
            assert_eq!(f.col_idx(), tril.col_idx());
        }
    }

    #[test]
    fn jacobi_factor_reproduces_jacobi_application() {
        // F F^T = D, so F^-T F^-1 r == Jacobi::apply(r).
        let a = generate::fem_mesh_3d(90, 4, 5);
        let f = try_jacobi_factor(&a).unwrap();
        let j = Jacobi::new(&a);
        let r: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.21).cos()).collect();
        let y = sptrsv_lower(&f, &r);
        let z = sptrsv_lower_transpose(&f, &y);
        assert!(dense::max_abs_diff(&z, &j.apply(&r)) < 1e-12);
    }

    #[test]
    fn identity_factor_reproduces_identity_application() {
        let a = generate::grid_laplacian_2d(6, 6);
        let f = identity_factor(&a).unwrap();
        let r: Vec<f64> = (0..a.rows()).map(|i| (i as f64) - 17.5).collect();
        let y = sptrsv_lower(&f, &r);
        let z = sptrsv_lower_transpose(&f, &y);
        assert!(dense::max_abs_diff(&z, &r) < 1e-15);
    }

    #[test]
    fn try_factors_reject_nonpositive_diagonal_without_panicking() {
        // tridiagonal has diag = 2; flip one entry negative.
        let mut a = generate::tridiagonal(5);
        let row_ptr = a.row_ptr().to_vec();
        let col_idx = a.col_idx().to_vec();
        for (p, &c) in col_idx.iter().enumerate().take(row_ptr[3]).skip(row_ptr[2]) {
            if c == 2 {
                a.values_mut()[p] = -2.0;
            }
        }
        for err in [
            try_sgs_factor(&a).unwrap_err(),
            try_ssor_factor(&a, 1.2).unwrap_err(),
            try_jacobi_factor(&a).unwrap_err(),
        ] {
            assert!(matches!(err, SolverError::Breakdown(_)), "got {err}");
        }
        // The identity rung never breaks down.
        assert!(identity_factor(&a).is_ok());
    }

    #[test]
    fn try_ssor_factor_rejects_bad_omega() {
        let a = generate::tridiagonal(3);
        assert!(matches!(
            try_ssor_factor(&a, 2.5),
            Err(SolverError::Breakdown(_))
        ));
    }

    #[test]
    fn try_apply_rejects_mismatched_dimensions() {
        let a = generate::tridiagonal(4);
        let r3 = [1.0, 2.0, 3.0];
        let r4 = [1.0, 2.0, 3.0, 4.0];
        let j = Jacobi::new(&a);
        assert!(matches!(j.try_apply(&r3), Err(SolverError::Dimension(_))));
        let s = SymmetricGaussSeidel::new(&a);
        assert!(matches!(s.try_apply(&r3), Err(SolverError::Dimension(_))));
        let ic = IncompleteCholesky::new(&a).unwrap();
        assert!(matches!(ic.try_apply(&r3), Err(SolverError::Dimension(_))));
        // Matching dims agree with the unchecked path; Identity is
        // dimensionless and accepts anything.
        assert_eq!(j.try_apply(&r4).unwrap(), j.apply(&r4));
        assert_eq!(Identity.try_apply(&r3).unwrap(), r3.to_vec());
    }

    #[test]
    fn flops_include_sptrsv_for_triangular_preconditioners() {
        let a = generate::grid_laplacian_2d(4, 4);
        let m = IncompleteCholesky::new(&a).unwrap();
        assert!(m.flops_per_apply().sptrsv > 0);
        let s = SymmetricGaussSeidel::new(&a);
        assert!(s.flops_per_apply().sptrsv > 0);
    }
}
