//! Power iteration — Table II's SpMV-only algorithm, used to estimate the
//! dominant eigenvalue of a matrix.

use crate::flops::{self, FlopBreakdown};
use azul_sparse::{dense, Csr};

/// Configuration for [`power_iteration`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerConfig {
    /// Convergence tolerance on successive eigenvalue estimates.
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            tol: 1e-10,
            max_iters: 10_000,
        }
    }
}

/// Result of a power iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerOutcome {
    /// Estimated dominant eigenvalue.
    pub eigenvalue: f64,
    /// Corresponding unit eigenvector estimate.
    pub eigenvector: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the eigenvalue estimate stabilized within tolerance.
    pub converged: bool,
    /// FLOPs executed.
    pub flops: FlopBreakdown,
}

/// Estimates the dominant eigenpair of a square matrix by power iteration.
///
/// # Panics
///
/// Panics if `a` is not square or has zero dimension.
pub fn power_iteration(a: &Csr, config: &PowerConfig) -> PowerOutcome {
    let n = a.rows();
    assert_eq!(a.cols(), n, "power iteration needs a square matrix");
    assert!(n > 0, "matrix must be non-empty");

    let mut fl = FlopBreakdown::default();
    // Deterministic non-degenerate start vector.
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect();
    let nrm = dense::norm2(&v);
    dense::scale(1.0 / nrm, &mut v);
    fl.vector += flops::dot_flops(n) + n as u64;

    let mut lambda = 0.0f64;
    let mut iterations = 0;
    let mut converged = false;
    while iterations < config.max_iters {
        let w = a.spmv(&v);
        fl.spmv += flops::spmv_flops(a);
        let new_lambda = dense::dot(&v, &w);
        fl.vector += flops::dot_flops(n);
        let wn = dense::norm2(&w);
        fl.vector += flops::dot_flops(n);
        if wn == 0.0 {
            break;
        }
        v = w;
        dense::scale(1.0 / wn, &mut v);
        fl.vector += n as u64;
        iterations += 1;
        if (new_lambda - lambda).abs() <= config.tol * new_lambda.abs().max(1.0) {
            lambda = new_lambda;
            converged = true;
            break;
        }
        lambda = new_lambda;
    }

    PowerOutcome {
        eigenvalue: lambda,
        eigenvector: v,
        iterations,
        converged,
        flops: fl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use azul_sparse::{generate, Coo};

    #[test]
    fn diagonal_matrix_dominant_eigenvalue() {
        let a = Coo::from_triplets(3, 3, [(0, 0, 1.0), (1, 1, 5.0), (2, 2, 2.0)])
            .unwrap()
            .to_csr();
        let out = power_iteration(&a, &PowerConfig::default());
        assert!(out.converged);
        assert!((out.eigenvalue - 5.0).abs() < 1e-6);
        // Eigenvector concentrates on index 1.
        assert!(out.eigenvector[1].abs() > 0.999);
    }

    #[test]
    fn laplacian_eigenvalue_bounds() {
        // 2-D Laplacian eigenvalues lie in (0, 8).
        let a = generate::grid_laplacian_2d(10, 10);
        let out = power_iteration(&a, &PowerConfig::default());
        assert!(out.converged);
        assert!(out.eigenvalue > 4.0 && out.eigenvalue < 8.0);
        // Residual check: ||A v - lambda v|| small.
        let av = a.spmv(&out.eigenvector);
        let mut r = av;
        azul_sparse::dense::axpy(-out.eigenvalue, &out.eigenvector, &mut r);
        assert!(azul_sparse::dense::norm2(&r) < 1e-3);
    }

    #[test]
    fn flops_counted() {
        let a = generate::tridiagonal(50);
        let out = power_iteration(&a, &PowerConfig::default());
        assert!(out.flops.spmv > 0);
        assert!(out.flops.vector > 0);
        assert_eq!(out.flops.sptrsv, 0);
    }
}
