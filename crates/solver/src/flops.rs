//! FLOP accounting, the common currency of every experiment.
//!
//! The paper reports performance in double-precision GFLOP/s with an FMAC
//! counting as 2 FLOPs. These helpers define the per-kernel FLOP costs used
//! consistently by the reference solvers, the analytic baseline models and
//! the simulator's GFLOP/s conversions.

use azul_sparse::Csr;

/// FLOPs of one SpMV with matrix `a`: one FMAC per nonzero.
pub fn spmv_flops(a: &Csr) -> u64 {
    2 * a.nnz() as u64
}

/// FLOPs of one triangular solve with `nnz_l` stored entries (diagonal
/// included): an FMAC per off-diagonal plus a multiply by the stored
/// reciprocal diagonal — counted as 2 per nonzero as the paper does.
pub fn sptrsv_flops(nnz_l: usize) -> u64 {
    2 * nnz_l as u64
}

/// FLOPs of a dot product of length `n`.
pub fn dot_flops(n: usize) -> u64 {
    2 * n as u64
}

/// FLOPs of an `axpy`/`xpby` of length `n`.
pub fn axpy_flops(n: usize) -> u64 {
    2 * n as u64
}

/// Per-kernel FLOP breakdown of a solve (Fig. 3 / Fig. 22 categories).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlopBreakdown {
    /// FLOPs in sparse matrix-vector products.
    pub spmv: u64,
    /// FLOPs in sparse triangular solves.
    pub sptrsv: u64,
    /// FLOPs in dense vector operations (dots, axpys, scaling).
    pub vector: u64,
}

impl FlopBreakdown {
    /// Total FLOPs across all kernels.
    pub fn total(&self) -> u64 {
        self.spmv + self.sptrsv + self.vector
    }

    /// Adds another breakdown element-wise.
    pub fn add(&mut self, other: FlopBreakdown) {
        self.spmv += other.spmv;
        self.sptrsv += other.sptrsv;
        self.vector += other.vector;
    }

    /// Fraction of total FLOPs per kernel, `(spmv, sptrsv, vector)`.
    /// Returns zeros for an empty breakdown.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total();
        if t == 0 {
            return (0.0, 0.0, 0.0);
        }
        let t = t as f64;
        (
            self.spmv as f64 / t,
            self.sptrsv as f64 / t,
            self.vector as f64 / t,
        )
    }
}

/// FLOPs of one PCG iteration (Listing 1's loop body) with matrix `a` and
/// IC-preconditioner triangle of `nnz_l` stored entries.
///
/// Counts: one SpMV, two SpTRSVs, two dot products, the `||r||` check, and
/// three vector updates.
pub fn pcg_iteration_breakdown(a: &Csr, nnz_l: usize) -> FlopBreakdown {
    let n = a.rows();
    FlopBreakdown {
        spmv: spmv_flops(a),
        sptrsv: 2 * sptrsv_flops(nnz_l),
        vector: 2 * dot_flops(n) + dot_flops(n) + 3 * axpy_flops(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use azul_sparse::generate;

    #[test]
    fn kernel_flop_formulas() {
        let a = generate::grid_laplacian_2d(4, 4);
        assert_eq!(spmv_flops(&a), 2 * a.nnz() as u64);
        assert_eq!(sptrsv_flops(100), 200);
        assert_eq!(dot_flops(10), 20);
        assert_eq!(axpy_flops(10), 20);
    }

    #[test]
    fn breakdown_totals_and_fractions() {
        let mut b = FlopBreakdown {
            spmv: 60,
            sptrsv: 30,
            vector: 10,
        };
        assert_eq!(b.total(), 100);
        let (s, t, v) = b.fractions();
        assert!((s - 0.6).abs() < 1e-12);
        assert!((t - 0.3).abs() < 1e-12);
        assert!((v - 0.1).abs() < 1e-12);
        b.add(FlopBreakdown {
            spmv: 1,
            sptrsv: 2,
            vector: 3,
        });
        assert_eq!(b.total(), 106);
    }

    #[test]
    fn empty_breakdown_fractions_are_zero() {
        assert_eq!(FlopBreakdown::default().fractions(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn pcg_iteration_counts_all_kernels() {
        let a = generate::grid_laplacian_2d(6, 6);
        let l = a.lower_triangle();
        let b = pcg_iteration_breakdown(&a, l.nnz());
        assert_eq!(b.spmv, 2 * a.nnz() as u64);
        assert_eq!(b.sptrsv, 4 * l.nnz() as u64);
        assert_eq!(b.vector, 12 * a.rows() as u64);
    }
}
