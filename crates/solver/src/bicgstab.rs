//! BiCGStab — the stabilized bi-conjugate gradient solver of Table II, for
//! non-symmetric systems.

use crate::flops::{self, FlopBreakdown};
use crate::pcg::{BreakdownKind, SolveOutcome, SolveStatus};
use crate::precond::Preconditioner;
use azul_sparse::{dense, Csr};

/// Configuration for [`bicgstab`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiCgStabConfig {
    /// Convergence tolerance on `||r||_2`.
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for BiCgStabConfig {
    fn default() -> Self {
        BiCgStabConfig {
            tol: 1e-10,
            max_iters: 5000,
        }
    }
}

/// Solves `A x = b` with right-preconditioned BiCGStab (initial guess 0).
///
/// # Panics
///
/// Panics if `b.len() != a.rows()` or `a` is not square.
pub fn bicgstab<M: Preconditioner + ?Sized>(
    a: &Csr,
    b: &[f64],
    m: &M,
    config: &BiCgStabConfig,
) -> SolveOutcome {
    let n = a.rows();
    assert_eq!(a.cols(), n, "bicgstab needs a square matrix");
    assert_eq!(b.len(), n, "rhs length mismatch");

    let mut fl = FlopBreakdown::default();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let r_hat = r.clone();
    let mut rho_old = 1.0;
    let mut alpha = 1.0;
    let mut omega = 1.0;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];

    let mut iterations = 0;
    let mut breakdown: Option<BreakdownKind> = None;
    let mut converged = dense::norm2(&r) <= config.tol;
    fl.vector += flops::dot_flops(n);

    while !converged && iterations < config.max_iters {
        let rho = dense::dot(&r_hat, &r);
        fl.vector += flops::dot_flops(n);
        if rho == 0.0 {
            breakdown = Some(BreakdownKind::RhoZero);
            break;
        }
        if !rho.is_finite() {
            breakdown = Some(BreakdownKind::NonFinite);
            break;
        }
        let beta = (rho / rho_old) * (alpha / omega);
        // p = r + beta (p - omega v)
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        fl.vector += 2 * flops::axpy_flops(n);
        // v = A M^-1 p
        let y = m.apply(&p);
        fl.add(m.flops_per_apply());
        v = a.spmv(&y);
        fl.spmv += flops::spmv_flops(a);
        let rhat_v = dense::dot(&r_hat, &v);
        fl.vector += flops::dot_flops(n);
        if rhat_v == 0.0 {
            breakdown = Some(BreakdownKind::RhatVZero);
            break;
        }
        alpha = rho / rhat_v;
        if !alpha.is_finite() {
            breakdown = Some(BreakdownKind::NonFinite);
            break;
        }
        // s = r - alpha v
        let mut s = r.clone();
        dense::axpy(-alpha, &v, &mut s);
        fl.vector += flops::axpy_flops(n);
        // x += alpha y (right preconditioning)
        dense::axpy(alpha, &y, &mut x);
        fl.vector += flops::axpy_flops(n);
        let snorm = dense::norm2(&s);
        fl.vector += flops::dot_flops(n);
        if snorm <= config.tol {
            iterations += 1;
            converged = true;
            break;
        }
        // t = A M^-1 s
        let z = m.apply(&s);
        fl.add(m.flops_per_apply());
        let t = a.spmv(&z);
        fl.spmv += flops::spmv_flops(a);
        let tt = dense::dot(&t, &t);
        fl.vector += flops::dot_flops(n);
        if tt == 0.0 {
            breakdown = Some(BreakdownKind::TtZero);
            break;
        }
        omega = dense::dot(&t, &s) / tt;
        fl.vector += flops::dot_flops(n);
        if !omega.is_finite() {
            breakdown = Some(BreakdownKind::NonFinite);
            break;
        }
        // x += omega z ; r = s - omega t
        dense::axpy(omega, &z, &mut x);
        r = s;
        dense::axpy(-omega, &t, &mut r);
        fl.vector += 2 * flops::axpy_flops(n);

        rho_old = rho;
        iterations += 1;
        let rnorm = dense::norm2(&r);
        fl.vector += flops::dot_flops(n);
        converged = rnorm <= config.tol;
        if omega == 0.0 && !converged {
            breakdown = Some(BreakdownKind::OmegaZero);
            break;
        }
    }

    let final_residual = dense::norm2(&dense::sub(b, &a.spmv(&x)));
    let status = match (converged, breakdown) {
        (true, _) => SolveStatus::Converged,
        (false, Some(kind)) => SolveStatus::Breakdown(kind),
        (false, None) => SolveStatus::MaxIters,
    };
    SolveOutcome {
        x,
        iterations,
        converged,
        status,
        final_residual,
        flops: fl,
        residual_history: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ilu0::ilu0;
    use crate::precond::{Identity, Preconditioner};
    use azul_sparse::{generate, Coo};

    /// ILU(0) wrapped as a `Preconditioner`.
    struct IluPrecond(crate::ilu0::Ilu0);

    impl Preconditioner for IluPrecond {
        fn apply(&self, r: &[f64]) -> Vec<f64> {
            self.0.solve(r)
        }
        fn flops_per_apply(&self) -> FlopBreakdown {
            FlopBreakdown {
                sptrsv: flops::sptrsv_flops(self.0.l.nnz()) + flops::sptrsv_flops(self.0.u.nnz()),
                ..Default::default()
            }
        }
        fn name(&self) -> &'static str {
            "ilu0"
        }
    }

    fn rhs(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect()
    }

    #[test]
    fn solves_spd_system() {
        let a = generate::grid_laplacian_2d(10, 10);
        let b = rhs(a.rows());
        let out = bicgstab(&a, &b, &Identity, &BiCgStabConfig::default());
        assert!(out.converged, "stalled at {}", out.final_residual);
        assert!(out.final_residual < 1e-8);
    }

    #[test]
    fn solves_nonsymmetric_system() {
        // Perturb a Laplacian into a non-symmetric diagonally dominant matrix.
        let base = generate::grid_laplacian_2d(8, 8);
        let mut coo = Coo::new(base.rows(), base.cols());
        for (r, c, v) in base.iter() {
            let skew = if r < c { 0.3 } else { 0.0 };
            coo.push(r, c, v + skew * v.abs()).unwrap();
        }
        let a = coo.to_csr();
        assert!(!a.is_symmetric(1e-12));
        let b = rhs(a.rows());
        let out = bicgstab(&a, &b, &Identity, &BiCgStabConfig::default());
        assert!(out.converged);
        assert!(out.final_residual < 1e-8);
    }

    #[test]
    fn ilu_preconditioning_reduces_iterations() {
        let a = generate::fem_mesh_3d(200, 6, 77);
        let b = rhs(a.rows());
        let plain = bicgstab(&a, &b, &Identity, &BiCgStabConfig::default());
        let f = ilu0(&a).unwrap();
        let m = IluPrecond(f);
        let pre = bicgstab(&a, &b, &m, &BiCgStabConfig::default());
        assert!(plain.converged && pre.converged);
        assert!(
            pre.iterations <= plain.iterations,
            "ILU should not be slower: {} vs {}",
            pre.iterations,
            plain.iterations
        );
        assert!(pre.flops.sptrsv > 0);
    }

    #[test]
    fn zero_rhs_is_trivial() {
        let a = generate::tridiagonal(5);
        let out = bicgstab(&a, &[0.0; 5], &Identity, &BiCgStabConfig::default());
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.status, crate::SolveStatus::Converged);
    }

    #[test]
    fn singular_matrix_reports_structured_breakdown() {
        // diag(1, 0) with b = [0, 1]: the rhs lives in A's null space
        // direction, so v = A p = 0 and r̂·v vanishes on iteration 1.
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, 0.0).unwrap();
        let a = coo.to_csr();
        let out = bicgstab(&a, &[0.0, 1.0], &Identity, &BiCgStabConfig::default());
        assert!(!out.converged);
        assert_eq!(
            out.status,
            crate::SolveStatus::Breakdown(crate::BreakdownKind::RhatVZero)
        );
    }

    #[test]
    fn exact_solution_rhs_reports_rho_breakdown_or_converges() {
        // b orthogonal to r̂ = r can only happen with r = 0 (r̂ = r at
        // start), so engineer rho = 0 via one exact step: A = I, any b
        // converges in one iteration — never a breakdown.
        let a = azul_sparse::Csr::identity(3);
        let out = bicgstab(&a, &[2.0, -3.0, 0.5], &Identity, &BiCgStabConfig::default());
        assert!(out.converged);
        assert!(!out.status.is_breakdown());
    }
}
