//! The sparse triangular-solve kernels (Fig. 4).
//!
//! SpMV lives on [`Csr::spmv`]; this module adds forward and backward
//! substitution, the SpTRSV kernels that dominate PCG alongside SpMV
//! (Fig. 3).

use azul_sparse::Csr;

/// Solves `L x = b` where `L` is lower triangular with nonzero diagonal.
///
/// Entries above the diagonal are ignored, so a full matrix may be passed
/// to solve with its lower triangle.
///
/// # Panics
///
/// Panics if `L` is not square, `b` has the wrong length, or a diagonal
/// entry is missing/zero.
pub fn sptrsv_lower(l: &Csr, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(l.cols(), n, "triangular solve needs a square matrix");
    assert_eq!(b.len(), n, "rhs length mismatch");
    let mut x = vec![0.0; n];
    for i in 0..n {
        let mut acc = b[i];
        let mut diag = 0.0;
        for (j, v) in l.row(i) {
            if j < i {
                acc -= v * x[j];
            } else if j == i {
                diag = v;
            }
        }
        assert!(diag != 0.0, "zero or missing diagonal at row {i}");
        x[i] = acc / diag;
    }
    x
}

/// Solves `U x = b` where `U` is upper triangular with nonzero diagonal.
///
/// Entries below the diagonal are ignored.
///
/// # Panics
///
/// Panics if `U` is not square, `b` has the wrong length, or a diagonal
/// entry is missing/zero.
pub fn sptrsv_upper(u: &Csr, b: &[f64]) -> Vec<f64> {
    let n = u.rows();
    assert_eq!(u.cols(), n, "triangular solve needs a square matrix");
    assert_eq!(b.len(), n, "rhs length mismatch");
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = b[i];
        let mut diag = 0.0;
        for (j, v) in u.row(i) {
            if j > i {
                acc -= v * x[j];
            } else if j == i {
                diag = v;
            }
        }
        assert!(diag != 0.0, "zero or missing diagonal at row {i}");
        x[i] = acc / diag;
    }
    x
}

/// Solves `L^T x = b` given lower-triangular `L` (used for the
/// `trisolve(L^T, ...)` step of Listing 1 without materializing the
/// transpose).
///
/// # Panics
///
/// Panics as [`sptrsv_lower`] does.
pub fn sptrsv_lower_transpose(l: &Csr, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(l.cols(), n, "triangular solve needs a square matrix");
    assert_eq!(b.len(), n, "rhs length mismatch");
    // Column-oriented backward substitution on L's rows.
    let mut x = b.to_vec();
    for i in (0..n).rev() {
        let mut diag = 0.0;
        for (j, v) in l.row(i) {
            if j == i {
                diag = v;
            }
        }
        assert!(diag != 0.0, "zero or missing diagonal at row {i}");
        x[i] /= diag;
        let xi = x[i];
        for (j, v) in l.row(i) {
            if j < i {
                x[j] -= v * xi;
            }
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use azul_sparse::{dense, generate, Coo};

    fn lower_sample() -> Csr {
        // L = [2 0 0; 1 3 0; 0 -1 4]
        Coo::from_triplets(
            3,
            3,
            [
                (0, 0, 2.0),
                (1, 0, 1.0),
                (1, 1, 3.0),
                (2, 1, -1.0),
                (2, 2, 4.0),
            ],
        )
        .unwrap()
        .to_csr()
    }

    #[test]
    fn lower_solve_exact() {
        let l = lower_sample();
        let x = sptrsv_lower(&l, &[2.0, 7.0, 2.0]);
        // x0 = 1; x1 = (7-1)/3 = 2; x2 = (2+2)/4 = 1
        assert_eq!(x, vec![1.0, 2.0, 1.0]);
        // verify L x = b
        assert!(dense::max_abs_diff(&l.spmv(&x), &[2.0, 7.0, 2.0]) < 1e-14);
    }

    #[test]
    fn upper_solve_exact() {
        let u = lower_sample().transpose();
        let b = [2.0, 7.0, 2.0];
        let x = sptrsv_upper(&u, &b);
        assert!(dense::max_abs_diff(&u.spmv(&x), &b) < 1e-14);
    }

    #[test]
    fn lower_transpose_matches_materialized() {
        let a = generate::fem_mesh_3d(120, 5, 17);
        let l = a.lower_triangle();
        let b: Vec<f64> = (0..120).map(|i| (i as f64 * 0.7).cos()).collect();
        let via_transpose = sptrsv_upper(&l.transpose(), &b);
        let direct = sptrsv_lower_transpose(&l, &b);
        assert!(dense::max_abs_diff(&via_transpose, &direct) < 1e-10);
    }

    #[test]
    fn full_matrix_uses_lower_triangle_only() {
        let a = generate::grid_laplacian_2d(5, 5);
        let b = vec![1.0; 25];
        let x_full = sptrsv_lower(&a, &b);
        let x_tri = sptrsv_lower(&a.lower_triangle(), &b);
        assert!(dense::max_abs_diff(&x_full, &x_tri) < 1e-14);
    }

    #[test]
    fn random_lower_roundtrip() {
        let a = generate::fem_mesh_3d(200, 6, 23);
        let l = a.lower_triangle();
        let x_true: Vec<f64> = (0..200)
            .map(|i| ((i * 37 % 100) as f64) / 50.0 - 1.0)
            .collect();
        let b = l.spmv(&x_true);
        let x = sptrsv_lower(&l, &b);
        assert!(dense::rel_l2_diff(&x, &x_true) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "zero or missing diagonal")]
    fn missing_diagonal_panics() {
        let l = Coo::from_triplets(2, 2, [(0, 0, 1.0), (1, 0, 1.0)])
            .unwrap()
            .to_csr();
        sptrsv_lower(&l, &[1.0, 1.0]);
    }
}
