//! Preconditioned conjugate gradients (Listing 1).

use crate::flops::{self, FlopBreakdown};
use crate::precond::{Identity, Preconditioner};
use azul_sparse::{dense, Csr};

/// Configuration for [`pcg`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcgConfig {
    /// Convergence tolerance on `||r||_2` (Listing 1's `tol`).
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Whether to record `||r||` after every iteration.
    pub record_residuals: bool,
}

impl Default for PcgConfig {
    fn default() -> Self {
        PcgConfig {
            tol: 1e-10,
            max_iters: 5000,
            record_residuals: false,
        }
    }
}

/// What specifically broke when an iterative solver stopped short.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakdownKind {
    /// CG/PCG: the curvature `p·Ap` hit exactly zero — the matrix is
    /// indefinite/singular along the search direction (or state was
    /// corrupted by a fault).
    PApZero,
    /// BiCGStab: `rho = r̂·r` vanished.
    RhoZero,
    /// BiCGStab: `r̂·v` vanished.
    RhatVZero,
    /// BiCGStab: `t·t` vanished (stationary update direction).
    TtZero,
    /// BiCGStab: the stabilization parameter `omega` vanished.
    OmegaZero,
    /// A recurrence scalar went NaN/Inf.
    NonFinite,
    /// The residual norm grew past the divergence guard (used by the
    /// simulator frontends' fault detection).
    Diverged,
    /// The residual stopped improving: relative decrease below the
    /// configured threshold across a stagnation window (used by the
    /// simulator frontends' stagnation detector).
    Stagnated,
    /// The per-attempt cycle budget expired before convergence (used by
    /// the solve supervisor's bounded retries).
    BudgetExhausted,
    /// An integrity check (ABFT kernel checksum or true-residual audit)
    /// detected silent state corruption that rollback could not clear
    /// (used by the simulator frontends' integrity machinery).
    IntegrityViolation,
}

impl std::fmt::Display for BreakdownKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BreakdownKind::PApZero => "p·Ap = 0",
            BreakdownKind::RhoZero => "rho = 0",
            BreakdownKind::RhatVZero => "r̂·v = 0",
            BreakdownKind::TtZero => "t·t = 0",
            BreakdownKind::OmegaZero => "omega = 0",
            BreakdownKind::NonFinite => "non-finite scalar",
            BreakdownKind::Diverged => "residual divergence",
            BreakdownKind::Stagnated => "residual stagnation",
            BreakdownKind::BudgetExhausted => "cycle budget exhausted",
            BreakdownKind::IntegrityViolation => "integrity violation",
        };
        f.write_str(s)
    }
}

/// Structured termination status of an iterative solve — how the loop
/// ended, not just whether the tolerance was met.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// `||r|| <= tol` within the iteration cap.
    Converged,
    /// The iteration cap expired without convergence or breakdown.
    MaxIters,
    /// A numerical breakdown ended the recurrence early.
    Breakdown(BreakdownKind),
}

impl SolveStatus {
    /// Whether the solve ended in a breakdown.
    pub fn is_breakdown(&self) -> bool {
        matches!(self, SolveStatus::Breakdown(_))
    }
}

impl std::fmt::Display for SolveStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveStatus::Converged => f.write_str("converged"),
            SolveStatus::MaxIters => f.write_str("max iterations reached"),
            SolveStatus::Breakdown(k) => write!(f, "breakdown: {k}"),
        }
    }
}

/// Result of an iterative solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOutcome {
    /// The computed solution.
    pub x: Vec<f64>,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Whether `||r|| <= tol` was reached within the iteration cap.
    pub converged: bool,
    /// How the solve terminated (converged / cap / which breakdown).
    pub status: SolveStatus,
    /// Final residual norm `||b - A x||_2` (recomputed, not recursive).
    pub final_residual: f64,
    /// Total FLOPs executed, by kernel.
    pub flops: FlopBreakdown,
    /// `||r||` after each iteration (empty unless requested).
    pub residual_history: Vec<f64>,
}

/// Solves `A x = b` with preconditioned conjugate gradients, following the
/// paper's Listing 1 exactly (initial guess `x = 0`).
///
/// # Panics
///
/// Panics if `b.len() != a.rows()` or `a` is not square.
pub fn pcg<M: Preconditioner + ?Sized>(
    a: &Csr,
    b: &[f64],
    m: &M,
    config: &PcgConfig,
) -> SolveOutcome {
    let n = a.rows();
    assert_eq!(a.cols(), n, "pcg needs a square matrix");
    assert_eq!(b.len(), n, "rhs length mismatch");

    let mut flops_total = FlopBreakdown::default();
    let mut history = Vec::new();

    // x = 0, r = b
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    // z = p = M^-1 r
    let z = m.apply(&r);
    flops_total.add(m.flops_per_apply());
    let mut p = z.clone();
    let mut rz_old = dense::dot(&r, &z);
    flops_total.vector += flops::dot_flops(n);

    let mut iterations = 0;
    let mut breakdown: Option<BreakdownKind> = None;
    let mut converged = dense::norm2(&r) <= config.tol;
    flops_total.vector += flops::dot_flops(n);

    while !converged && iterations < config.max_iters {
        // Ap = A p
        let ap = a.spmv(&p);
        flops_total.spmv += flops::spmv_flops(a);
        // alpha = rz_old / (p . Ap)
        let p_ap = dense::dot(&p, &ap);
        flops_total.vector += flops::dot_flops(n);
        if p_ap == 0.0 || !p_ap.is_finite() {
            // Numerical breakdown; stop and return best effort, with the
            // cause in `status`.
            breakdown = Some(if p_ap == 0.0 {
                BreakdownKind::PApZero
            } else {
                BreakdownKind::NonFinite
            });
            break;
        }
        let alpha = rz_old / p_ap;
        // x += alpha p ; r -= alpha Ap
        dense::axpy(alpha, &p, &mut x);
        dense::axpy(-alpha, &ap, &mut r);
        flops_total.vector += 2 * flops::axpy_flops(n);
        // z = M^-1 r
        let z = m.apply(&r);
        flops_total.add(m.flops_per_apply());
        // beta = rz_new / rz_old ; p = z + beta p
        let rz_new = dense::dot(&r, &z);
        flops_total.vector += flops::dot_flops(n);
        let beta = rz_new / rz_old;
        dense::xpby(&z, beta, &mut p);
        flops_total.vector += flops::axpy_flops(n);
        rz_old = rz_new;

        iterations += 1;
        let rnorm = dense::norm2(&r);
        flops_total.vector += flops::dot_flops(n);
        if config.record_residuals {
            history.push(rnorm);
        }
        converged = rnorm <= config.tol;
    }

    // True residual, recomputed.
    let final_residual = dense::norm2(&dense::sub(b, &a.spmv(&x)));
    let status = match (converged, breakdown) {
        (true, _) => SolveStatus::Converged,
        (false, Some(kind)) => SolveStatus::Breakdown(kind),
        (false, None) => SolveStatus::MaxIters,
    };
    SolveOutcome {
        x,
        iterations,
        converged,
        status,
        final_residual,
        flops: flops_total,
        residual_history: history,
    }
}

/// Plain conjugate gradients: [`pcg`] with the identity preconditioner.
///
/// # Panics
///
/// Panics as [`pcg`] does.
pub fn cg(a: &Csr, b: &[f64], config: &PcgConfig) -> SolveOutcome {
    pcg(a, b, &Identity, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{IncompleteCholesky, Jacobi, SymmetricGaussSeidel};
    use azul_sparse::generate;

    fn rhs(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 31 % 17) as f64) / 17.0 + 0.1)
            .collect()
    }

    #[test]
    fn cg_solves_grid() {
        let a = generate::grid_laplacian_2d(12, 12);
        let b = rhs(a.rows());
        let out = cg(&a, &b, &PcgConfig::default());
        assert!(out.converged, "cg failed in {} iters", out.iterations);
        assert!(out.final_residual <= 1e-9);
    }

    #[test]
    fn ic_preconditioner_reduces_iterations() {
        let a = generate::grid_laplacian_2d(20, 20);
        let b = rhs(a.rows());
        let plain = cg(&a, &b, &PcgConfig::default());
        let m = IncompleteCholesky::new(&a).unwrap();
        let pre = pcg(&a, &b, &m, &PcgConfig::default());
        assert!(pre.converged && plain.converged);
        assert!(
            pre.iterations < plain.iterations,
            "IC(0) should converge faster: {} vs {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn jacobi_and_sgs_converge_on_fem() {
        let a = generate::fem_mesh_3d(200, 6, 5);
        let b = rhs(a.rows());
        let cfg = PcgConfig {
            tol: 1e-8,
            ..Default::default()
        };
        let j = pcg(&a, &b, &Jacobi::new(&a), &cfg);
        assert!(j.converged);
        let s = pcg(&a, &b, &SymmetricGaussSeidel::new(&a), &cfg);
        assert!(s.converged);
        assert!(s.iterations <= j.iterations, "SGS should beat Jacobi");
    }

    #[test]
    fn residual_history_is_recorded_and_decreases_overall() {
        let a = generate::grid_laplacian_2d(10, 10);
        let b = rhs(a.rows());
        let out = cg(
            &a,
            &b,
            &PcgConfig {
                record_residuals: true,
                ..Default::default()
            },
        );
        assert_eq!(out.residual_history.len(), out.iterations);
        let first = out.residual_history[0];
        let last = *out.residual_history.last().unwrap();
        assert!(last < first);
    }

    #[test]
    fn flops_are_positive_and_spmv_dominated_without_preconditioner() {
        let a = generate::fem_mesh_3d(150, 8, 9);
        let b = rhs(a.rows());
        let out = cg(&a, &b, &PcgConfig::default());
        assert!(out.flops.spmv > 0);
        assert_eq!(out.flops.sptrsv, 0);
        assert!(out.flops.spmv > out.flops.vector);
    }

    #[test]
    fn sptrsv_flops_dominate_with_ic_on_dense_rows() {
        let a = generate::fem_mesh_3d(150, 8, 9);
        let b = rhs(a.rows());
        let m = IncompleteCholesky::new(&a).unwrap();
        let out = pcg(&a, &b, &m, &PcgConfig::default());
        // Two trisolves with tril(A)'s pattern ≈ same nnz as one SpMV.
        assert!(out.flops.sptrsv > 0);
        let (fs, ft, fv) = out.flops.fractions();
        assert!(fs > 0.2 && ft > 0.2 && fv < 0.5);
    }

    #[test]
    fn max_iters_caps_work() {
        let a = generate::grid_laplacian_2d(30, 30);
        let b = rhs(a.rows());
        let out = cg(
            &a,
            &b,
            &PcgConfig {
                max_iters: 3,
                ..Default::default()
            },
        );
        assert_eq!(out.iterations, 3);
        assert!(!out.converged);
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = generate::tridiagonal(10);
        let out = cg(&a, &[0.0; 10], &PcgConfig::default());
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.x, vec![0.0; 10]);
        assert_eq!(out.status, SolveStatus::Converged);
    }

    #[test]
    fn indefinite_matrix_reports_p_ap_breakdown() {
        // diag(1, -1) with b = [1, 1]: p = r = b gives p·Ap = 1 - 1 = 0,
        // the canonical CG breakdown on an indefinite matrix.
        let mut coo = azul_sparse::Coo::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, -1.0).unwrap();
        let a = coo.to_csr();
        let out = cg(&a, &[1.0, 1.0], &PcgConfig::default());
        assert!(!out.converged);
        assert_eq!(out.status, SolveStatus::Breakdown(BreakdownKind::PApZero));
        assert!(out.status.is_breakdown());
    }

    #[test]
    fn max_iters_status_is_distinct_from_breakdown() {
        let a = generate::grid_laplacian_2d(30, 30);
        let b = rhs(a.rows());
        let out = cg(
            &a,
            &b,
            &PcgConfig {
                max_iters: 3,
                ..Default::default()
            },
        );
        assert_eq!(out.status, SolveStatus::MaxIters);
    }
}
