//! Reference (functional) iterative solvers for the Azul reproduction.
//!
//! This crate is the numerical ground truth: the accelerator simulator's
//! results are validated against these implementations, and the FLOP
//! accounting here defines the GFLOP/s numbers reported by every
//! experiment.
//!
//! It provides:
//!
//! * the two dominant kernels, [`kernels::sptrsv_lower`] /
//!   [`kernels::sptrsv_upper`] (SpMV lives on
//!   [`Csr::spmv`](azul_sparse::Csr::spmv));
//! * preconditioners ([`precond`]): identity, Jacobi, symmetric
//!   Gauss-Seidel, SSOR, incomplete Cholesky IC(0) and incomplete LU
//!   ILU(0) — the rows of Table II;
//! * solvers: [`pcg()`] (Listing 1), plain CG, [`bicgstab()`], restarted
//!   [`gmres()`], and [`power_iteration`] — Table II's algorithm column;
//! * FLOP accounting ([`flops`]) for each kernel, used to convert cycle
//!   counts into GFLOP/s.
//!
//! # Example
//!
//! ```
//! use azul_sparse::generate;
//! use azul_solver::{pcg, precond::IncompleteCholesky, PcgConfig};
//!
//! let a = generate::grid_laplacian_2d(10, 10);
//! let b = vec![1.0; a.rows()];
//! let m = IncompleteCholesky::new(&a)?;
//! let out = pcg(&a, &b, &m, &PcgConfig::default());
//! assert!(out.converged);
//! # Ok::<(), azul_solver::SolverError>(())
//! ```

#![forbid(unsafe_code)]

pub mod abft;
pub mod bicgstab;
pub mod direct;
pub mod flops;
pub mod gmres;
pub mod ic0;
pub mod ilu0;
pub mod kernels;
pub mod pcg;
pub mod power;
pub mod precond;

pub use abft::{ChecksumCheck, OperatorChecksum};
pub use bicgstab::{bicgstab, BiCgStabConfig};
pub use direct::{dense_solve, DenseCholesky};
pub use gmres::{gmres, try_gmres, GmresConfig};
pub use pcg::{cg, pcg, BreakdownKind, PcgConfig, SolveOutcome, SolveStatus};
pub use power::{power_iteration, PowerConfig};

/// Errors from solver construction or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// Factorization hit a non-positive pivot that shifting could not fix.
    Breakdown(String),
    /// Operands have inconsistent dimensions.
    Dimension(String),
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::Breakdown(msg) => write!(f, "numerical breakdown: {msg}"),
            SolverError::Dimension(msg) => write!(f, "dimension mismatch: {msg}"),
        }
    }
}

impl std::error::Error for SolverError {
    /// `SolverError` is a leaf in every cause chain: `Breakdown` and
    /// `Dimension` carry the primary diagnosis in their message, with
    /// nothing structured underneath. Wrappers ([`azul_core`]'s
    /// `AzulError::Numeric`) chain *to* this error via their own
    /// `source()`; walking continues to `None` here.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        None
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, SolverError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(SolverError::Breakdown("pivot".into())
            .to_string()
            .contains("pivot"));
        assert!(SolverError::Dimension("n".into()).to_string().contains("n"));
    }
}
