//! Incomplete LU factorization with zero fill-in, ILU(0).
//!
//! Produces unit-lower-triangular `L` and upper-triangular `U` with the
//! sparsity pattern of `A` such that `L U ≈ A`. Listed in Table II as the
//! BiCGStab preconditioner for non-symmetric systems.

use crate::{Result, SolverError};
use azul_sparse::Csr;

/// The ILU(0) factors of a matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Ilu0 {
    /// Unit lower-triangular factor (unit diagonal stored explicitly).
    pub l: Csr,
    /// Upper-triangular factor.
    pub u: Csr,
}

/// Computes the ILU(0) factorization of a square matrix with a full
/// diagonal.
///
/// # Errors
///
/// Returns [`SolverError::Dimension`] for non-square input and
/// [`SolverError::Breakdown`] if a zero pivot appears.
pub fn ilu0(a: &Csr) -> Result<Ilu0> {
    let n = a.rows();
    if a.cols() != n {
        return Err(SolverError::Dimension(format!(
            "ilu0 needs a square matrix, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    // Work on a value copy of A's pattern (IKJ variant restricted to the
    // pattern).
    let mut f = a.clone();
    let row_ptr = f.row_ptr().to_vec();
    let col_idx = f.col_idx().to_vec();
    // diag_pos[i] = index of A[i][i] in the arrays.
    let mut diag_pos = vec![usize::MAX; n];
    for i in 0..n {
        #[allow(clippy::needless_range_loop)] // index used across several structures
        for p in row_ptr[i]..row_ptr[i + 1] {
            if col_idx[p] == i {
                diag_pos[i] = p;
            }
        }
        if diag_pos[i] == usize::MAX {
            return Err(SolverError::Breakdown(format!(
                "missing diagonal entry in row {i}"
            )));
        }
    }

    #[allow(clippy::needless_range_loop)] // indexes several arrays
    for i in 1..n {
        let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
        for p in lo..hi {
            let k = col_idx[p];
            if k >= i {
                break;
            }
            // L[i][k] = A[i][k] / U[k][k]
            let ukk = f.values()[diag_pos[k]];
            if ukk == 0.0 {
                return Err(SolverError::Breakdown(format!("zero pivot at row {k}")));
            }
            let lik = f.values()[p] / ukk;
            f.values_mut()[p] = lik;
            // A[i][j] -= L[i][k] * U[k][j] for j > k in row i's pattern.
            let (klo, khi) = (diag_pos[k] + 1, row_ptr[k + 1]);
            let mut pi = p + 1;
            for pk in klo..khi {
                let j = col_idx[pk];
                while pi < hi && col_idx[pi] < j {
                    pi += 1;
                }
                if pi < hi && col_idx[pi] == j {
                    let ukj = f.values()[pk];
                    f.values_mut()[pi] -= lik * ukj;
                }
            }
        }
    }

    let mut l = f.filter(|r, c| c < r);
    // Add the unit diagonal to L.
    let mut coo = azul_sparse::Coo::with_capacity(n, n, l.nnz() + n);
    for (r, c, v) in l.iter() {
        coo.push(r, c, v).expect("in bounds");
    }
    for i in 0..n {
        coo.push(i, i, 1.0).expect("in bounds");
    }
    l = coo.to_csr();
    let u = f.filter(|r, c| c >= r);
    Ok(Ilu0 { l, u })
}

impl Ilu0 {
    /// Applies `(LU)^{-1} r` via two triangular solves.
    ///
    /// # Panics
    ///
    /// Panics if `r.len()` differs from the factor dimension.
    pub fn solve(&self, r: &[f64]) -> Vec<f64> {
        let y = crate::kernels::sptrsv_lower(&self.l, r);
        crate::kernels::sptrsv_upper(&self.u, &y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use azul_sparse::{dense, generate, Coo};

    #[test]
    fn exact_on_tridiagonal() {
        // Pattern of LU equals pattern of A for tridiagonal: exact factorization.
        let a = generate::tridiagonal(15);
        let f = ilu0(&a).unwrap();
        let x_true: Vec<f64> = (0..15).map(|i| (i as f64).sin()).collect();
        let b = a.spmv(&x_true);
        let x = f.solve(&b);
        assert!(dense::rel_l2_diff(&x, &x_true) < 1e-10);
    }

    #[test]
    fn l_unit_diagonal_u_upper() {
        let a = generate::fem_mesh_3d(80, 5, 3);
        let f = ilu0(&a).unwrap();
        for i in 0..a.rows() {
            assert_eq!(f.l.get(i, i), 1.0);
        }
        for (r, c, _) in f.l.iter() {
            assert!(c <= r);
        }
        for (r, c, _) in f.u.iter() {
            assert!(c >= r);
        }
    }

    #[test]
    fn approximate_inverse_quality() {
        let a = generate::grid_laplacian_2d(8, 8);
        let f = ilu0(&a).unwrap();
        let x: Vec<f64> = (0..64).map(|i| ((i % 7) as f64) - 3.0).collect();
        let z = f.solve(&a.spmv(&x));
        assert!(dense::rel_l2_diff(&z, &x) < 0.5);
    }

    #[test]
    fn missing_diagonal_is_breakdown() {
        let a = Coo::from_triplets(2, 2, [(0, 1, 1.0), (1, 0, 1.0)])
            .unwrap()
            .to_csr();
        assert!(matches!(ilu0(&a), Err(SolverError::Breakdown(_))));
    }

    #[test]
    fn nonsquare_rejected() {
        let a = Coo::from_triplets(2, 3, [(0, 0, 1.0)]).unwrap().to_csr();
        assert!(matches!(ilu0(&a), Err(SolverError::Dimension(_))));
    }
}
