//! `azul-serve` — batch front-end for the solve service.
//!
//! Builds a batch of synthetic solve requests, pushes them through
//! [`azul_serve::serve_batch`] (bounded admission, prepare cache,
//! deadlines, retry/backoff, typed shedding), prints one line per
//! submission, and optionally writes each request's schema-v6 telemetry
//! journal plus a batch summary as JSON.
//!
//! ```text
//! azul-serve [--requests 6] [--queue-capacity 4] [--workers 1]
//!            [--operators 2] [--grid 4] [--cycle-budget N]
//!            [--fault-seed N [--fault-events 3]]
//!            [--deadline-ms N] [--out-dir DIR] [--quiet]
//! ```
//!
//! Requests cycle through `--operators` distinct synthetic Laplacians,
//! so any batch with more requests than operators exercises the keyed
//! prepare cache (repeat operators admit as `shared`). With
//! `--fault-seed`, the second request carries a seeded deterministic
//! [`FaultPlan`], exercising fault-tolerant solves (and, when the
//! machine degrades terminally, the service retry schedule). Batches
//! larger than `--queue-capacity` demonstrate typed overload shedding.
//!
//! The journals written to `--out-dir` are byte-identical for any
//! `--workers` value — the service's determinism contract — which the
//! CI `serve-smoke` job checks by diffing `--workers 1` against
//! `--workers 4` runs.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

use azul_core::AzulConfig;
use azul_mapping::TileGrid;
use azul_serve::{serve_batch, ServeConfig, SolveRequest};
use azul_sim::FaultPlan;
use azul_sparse::generate;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "help") {
        println!("azul-serve [--requests 6] [--queue-capacity 4] [--workers 1]");
        println!("           [--operators 2] [--grid 4] [--cycle-budget N]");
        println!("           [--fault-seed N [--fault-events 3]]");
        println!("           [--deadline-ms N] [--out-dir DIR] [--quiet]");
        return ExitCode::SUCCESS;
    }
    let opts = parse_opts(&args);
    let get = |key: &str, default: usize| -> usize {
        opts.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let requests = get("requests", 6);
    let queue_capacity = get("queue-capacity", 4);
    let workers = get("workers", 1);
    let operators = get("operators", 2).max(1);
    let grid = get("grid", 4);
    let fault_events = get("fault-events", 3);
    let fault_seed: Option<u64> = opts.get("fault-seed").and_then(|v| v.parse().ok());
    let cycle_budget: Option<u64> = opts.get("cycle-budget").and_then(|v| v.parse().ok());
    let deadline_ms: Option<u64> = opts.get("deadline-ms").and_then(|v| v.parse().ok());
    let out_dir: Option<PathBuf> = opts.get("out-dir").map(PathBuf::from);
    let quiet = opts.contains_key("quiet");

    let mut cfg = ServeConfig::new(AzulConfig::new(TileGrid::new(grid, grid)));
    cfg.queue_capacity = queue_capacity;
    cfg.workers = workers;
    if let Some(budget) = cycle_budget {
        cfg.default_cycle_budget = budget;
    }
    if let Some(ms) = deadline_ms {
        cfg.default_wall_deadline = Some(std::time::Duration::from_millis(ms));
    }

    // Distinct operators are different-sized 2D Laplacians; requests
    // cycle through them so repeats hit the prepare cache.
    let batch: Vec<SolveRequest> = (0..requests)
        .map(|i| {
            let side = 6 + 2 * (i % operators);
            let a = generate::grid_laplacian_2d(side, side);
            let n = a.rows();
            let b: Vec<f64> = (0..n)
                .map(|j| ((j as u64 * 13 + i as u64 * 7) % 9) as f64 / 9.0 + 0.2)
                .collect();
            let mut req = SolveRequest::new(format!("req-{i:03}"), a, b);
            if i == 1 {
                if let Some(seed) = fault_seed {
                    req.faults = Some(FaultPlan::seeded(seed, grid * grid, fault_events, 100_000));
                }
            }
            req
        })
        .collect();

    let report = serve_batch(cfg, batch);

    if !quiet {
        for out in &report.outcomes {
            let status = match &out.result {
                Ok(solve) => format!(
                    "success  iters={} residual={:.3e} cycles={}",
                    solve.iterations, solve.final_residual, solve.total_cycles
                ),
                Err(err) => format!("rejected {err}"),
            };
            println!(
                "[{:>3}] {}  prepare={:<6} attempts={} backoff={:?}  {}",
                out.queue_position, out.id, out.prepare, out.attempts, out.backoff_ticks, status
            );
        }
        println!(
            "batch: {} submitted, {} shed, cache {} hit / {} miss",
            report.outcomes.len(),
            report.shed,
            report.cache_hits,
            report.cache_misses
        );
    }

    if let Some(dir) = out_dir {
        if let Err(e) = write_artifacts(&dir, &report) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        if !quiet {
            println!("journals written to {}", dir.display());
        }
    }
    ExitCode::SUCCESS
}

fn write_artifacts(dir: &std::path::Path, report: &azul_serve::BatchReport) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    for out in &report.outcomes {
        let path = dir.join(format!("request-{}.json", out.id));
        std::fs::write(&path, &out.journal)
            .map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    let ok = report.outcomes.iter().filter(|o| o.result.is_ok()).count();
    let summary = format!(
        "{{\n  \"submitted\": {},\n  \"succeeded\": {},\n  \"shed\": {},\n  \
         \"cache_hits\": {},\n  \"cache_misses\": {}\n}}\n",
        report.outcomes.len(),
        ok,
        report.shed,
        report.cache_hits,
        report.cache_misses
    );
    let path = dir.join("summary.json");
    std::fs::write(&path, summary).map_err(|e| format!("write {}: {e}", path.display()))
}

fn parse_opts(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            let val = match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    let v = (*v).clone();
                    it.next();
                    v
                }
                _ => "true".to_string(),
            };
            map.insert(key.to_string(), val);
        }
    }
    map
}
