//! The solve service: bounded admission, a deterministic scheduler, a
//! worker pool, deadlines, cancellation, retry with backoff, and
//! graceful drain.
//!
//! # Determinism contract
//!
//! Every decision that ends up in a request's journal is made **at
//! admission time, under the state lock, as a function of the
//! submission order alone**: the queue position, the shed/admit
//! verdict, and the prepare leader/follower role. Worker threads only
//! ever *execute* those decisions, so running the same batch on a
//! 1-worker and a 16-worker pool produces byte-identical per-request
//! journals. Wall-clock quantities (queue wait, backoff sleeps) are
//! deliberately excluded from the journal; the backoff *schedule* is
//! recorded in virtual ticks instead.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use azul_core::supervisor::fill_supervisor_report;
use azul_core::{
    AzulConfig, AzulError, EscalationPolicy, PreparedRung, SolveSupervisor, SupervisedSolveReport,
};
use azul_sim::{CancelToken, FaultPlan};
use azul_sparse::Csr;
use azul_telemetry::report::{ServeSummary, TelemetryReport};

use crate::cache::{operator_key, Flight, FlightCache, FlightWait};
use crate::error::ServeError;

/// Locks a mutex, recovering the data from a poisoned lock: a worker
/// that panicked mid-request must not take the whole service down with
/// it, and every mutation the service makes under this lock is
/// transactional (no half-written outcomes).
fn hold<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Deterministic capped-exponential retry schedule for transient solve
/// failures.
///
/// Backoff is expressed in virtual *ticks* — `min(base << k, max)` for
/// the `k`-th retry — so the schedule that lands in telemetry is
/// jitter-free and reproducible. The wall duration of one tick is a
/// separate knob ([`RetryPolicy::tick`], default zero) that never
/// reaches the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Maximum service-level retries after the first attempt
    /// (`0` disables retrying).
    pub max_retries: u32,
    /// Backoff before the first retry, in ticks.
    pub base_backoff_ticks: u64,
    /// Ceiling on the per-retry backoff, in ticks.
    pub max_backoff_ticks: u64,
    /// Wall duration of one tick. The default [`Duration::ZERO`] makes
    /// retries immediate, which keeps tests fast and the schedule
    /// observable purely through telemetry.
    pub tick: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff_ticks: 1,
            max_backoff_ticks: 8,
            tick: Duration::ZERO,
        }
    }
}

impl RetryPolicy {
    /// Ticks to back off before retry number `retry` (0-based):
    /// `min(base << retry, max)`, saturating on shift overflow.
    pub fn backoff_ticks(&self, retry: u32) -> u64 {
        let grown = self
            .base_backoff_ticks
            .checked_shl(retry)
            .unwrap_or(u64::MAX);
        grown.min(self.max_backoff_ticks)
    }
}

/// Service-wide configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Base accelerator configuration shared by every request (grid,
    /// sim knobs, solver tolerances).
    pub base: AzulConfig,
    /// Degradation ladders handed to each request's
    /// [`SolveSupervisor`].
    pub policy: EscalationPolicy,
    /// Bounded admission queue: submissions beyond this many *pending*
    /// requests are shed with [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Worker threads executing requests. Journals are identical for
    /// any value; this only changes wall-clock throughput.
    pub workers: usize,
    /// Retry schedule for transient (simulator-side) failures.
    pub retry: RetryPolicy,
    /// Capacity of the keyed prepare cache; `0` disables sharing.
    pub cache_capacity: usize,
    /// Per-attempt simulated cycle budget applied when a request does
    /// not carry its own (`u64::MAX` disables).
    pub default_cycle_budget: u64,
    /// Wall deadline applied when a request does not carry its own.
    pub default_wall_deadline: Option<Duration>,
    /// Re-verify cached prepare artifacts' ABFT checksums on every
    /// cache hit, evicting (and journaling) any entry whose stored
    /// checksum no longer matches the artifact. Off by default: the
    /// scrub costs one checksum recomputation per hit.
    pub scrub_cache: bool,
}

impl ServeConfig {
    /// A service over `base` with the default three-ladder escalation
    /// policy, an 8-deep queue, one worker, and an 8-entry prepare
    /// cache.
    pub fn new(base: AzulConfig) -> Self {
        ServeConfig {
            base,
            policy: EscalationPolicy::default(),
            queue_capacity: 8,
            workers: 1,
            retry: RetryPolicy::default(),
            cache_capacity: 8,
            default_cycle_budget: u64::MAX,
            default_wall_deadline: None,
            scrub_cache: false,
        }
    }
}

/// One solve job as the caller describes it.
#[derive(Debug, Clone)]
pub struct SolveRequest {
    /// Caller-chosen identifier; lands in the journal verbatim.
    pub id: String,
    /// The operator.
    pub matrix: Csr,
    /// The right-hand side.
    pub rhs: Vec<f64>,
    /// Per-attempt simulated cycle budget override.
    pub cycle_budget: Option<u64>,
    /// Wall deadline override, measured from submission.
    pub wall_deadline: Option<Duration>,
    /// Fault plan injected into this request's solve attempts
    /// (prepares always run fault-free: faults model the accelerator,
    /// not the host-side preprocessing).
    pub faults: Option<FaultPlan>,
}

impl SolveRequest {
    /// A request with no overrides: service defaults apply.
    pub fn new(id: impl Into<String>, matrix: Csr, rhs: Vec<f64>) -> Self {
        SolveRequest {
            id: id.into(),
            matrix,
            rhs,
            cycle_budget: None,
            wall_deadline: None,
            faults: None,
        }
    }
}

/// The solution-bearing slice of a successful request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedSolve {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations of the winning supervised attempt.
    pub iterations: usize,
    /// Final residual of the winning attempt.
    pub final_residual: f64,
    /// Extrapolated cycles of the winning attempt.
    pub total_cycles: u64,
    /// Supervisor attempts the winning solve consumed.
    pub supervisor_attempts: usize,
    /// Degradation-ladder transitions the winning solve consumed.
    pub escalations: usize,
}

/// Everything the service knows about one request after it terminated.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// The request's caller-chosen id.
    pub id: String,
    /// Submission index (0-based), including shed submissions.
    pub queue_position: u64,
    /// Prepare-cache role: `"leader"`, `"shared"`, or `"none"`.
    pub prepare: String,
    /// Service-level solve attempts executed (0 for shed requests).
    pub attempts: u64,
    /// The backoff schedule actually walked, in ticks.
    pub backoff_ticks: Vec<u64>,
    /// The result: a solution or a typed service error.
    pub result: Result<ServedSolve, ServeError>,
    /// Pretty-printed schema-v6 telemetry journal for this request.
    pub journal: String,
}

/// Caller-side handle for one admitted request.
#[derive(Debug, Clone)]
pub struct RequestHandle {
    id: String,
    token: CancelToken,
}

impl RequestHandle {
    /// The request id this handle controls.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Cooperatively cancels the request. The simulator observes the
    /// flag at its next serial commit point; the journal records the
    /// outcome as `"cancelled"` (or `"deadline"` when the wall deadline
    /// had already passed).
    pub fn cancel(&self) {
        self.token.cancel();
    }
}

/// An admitted request queued for execution.
#[derive(Debug)]
struct Job {
    req: SolveRequest,
    token: CancelToken,
    /// Submission index; also the outcome slot.
    queue_position: u64,
    /// Prepare-cache flight this job participates in.
    flight: Arc<Flight>,
    /// Decided at admission: leads the flight or follows it.
    leader: bool,
    /// Cache key, journaled for cross-request correlation.
    operator_key: u64,
    /// Resolved per-attempt cycle budget.
    cycle_budget: u64,
    /// Resolved wall deadline (absolute).
    deadline: Option<Instant>,
    /// Cached-artifact checksum re-verifications this admission ran
    /// (0 or 1; decided at admission so the journal stays a pure
    /// function of submission order).
    scrub_checks: u64,
    /// Poisoned cache entries this admission evicted.
    scrub_evictions: u64,
}

/// Shared mutable service state. One lock guards all of it: admission,
/// role assignment and outcome recording must be transactional for the
/// determinism contract to hold, and none of the guarded sections block.
struct State {
    queue: VecDeque<Job>,
    /// Workers only pop jobs while the gate is open. Batch mode submits
    /// everything first, then opens — making the shed set a pure
    /// function of submission order.
    gate_open: bool,
    /// No further admissions; workers exit once the queue drains.
    shutdown: bool,
    monitor_stop: bool,
    cache: FlightCache,
    /// Armed wall deadlines, pruned by the monitor thread.
    deadlines: Vec<(Instant, CancelToken)>,
    /// One slot per submission, filled as requests terminate.
    outcomes: Vec<Option<RequestOutcome>>,
    /// Jobs currently executing on a worker.
    running: usize,
}

struct Inner {
    cfg: ServeConfig,
    state: Mutex<State>,
    /// Wakes workers: job queued, gate opened, or shutdown.
    work_cv: Condvar,
    /// Wakes `wait_all`: an outcome landed.
    done_cv: Condvar,
    /// Wakes the deadline monitor: deadline armed or shutdown.
    monitor_cv: Condvar,
}

/// The running service: a paused-gate worker pool plus a deadline
/// monitor.
///
/// Lifecycle: [`ServeService::start`] → [`ServeService::submit`] (any
/// number of times) → [`ServeService::open`] → optionally
/// [`ServeService::wait_all`] → [`ServeService::shutdown`], which
/// drains admitted work and returns every outcome in submission order.
/// [`serve_batch`] wraps the whole sequence for one-shot use.
pub struct ServeService {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    monitor: Option<JoinHandle<()>>,
}

impl ServeService {
    /// Starts the worker pool and the deadline monitor. The gate starts
    /// **closed**: submissions are admitted (or shed) immediately, but
    /// no work executes until [`ServeService::open`] is called.
    pub fn start(cfg: ServeConfig) -> ServeService {
        let worker_count = cfg.workers.max(1);
        let cache_capacity = cfg.cache_capacity;
        let inner = Arc::new(Inner {
            cfg,
            state: Mutex::new(State {
                queue: VecDeque::new(),
                gate_open: false,
                shutdown: false,
                monitor_stop: false,
                cache: FlightCache::new(cache_capacity),
                deadlines: Vec::new(),
                outcomes: Vec::new(),
                running: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            monitor_cv: Condvar::new(),
        });
        let workers = (0..worker_count)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("azul-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn serve worker thread")
            })
            .collect();
        let monitor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("azul-serve-deadline-monitor".into())
                .spawn(move || monitor_loop(&inner))
                .expect("spawn serve deadline monitor thread")
        };
        ServeService {
            inner,
            workers,
            monitor: Some(monitor),
        }
    }

    /// Admits a request or sheds it with a typed error.
    ///
    /// Shed submissions still get an outcome slot and a journal, so a
    /// batch's result covers *every* submission in order.
    ///
    /// # Errors
    ///
    /// [`ServeError::Shutdown`] once [`ServeService::shutdown`] began;
    /// [`ServeError::QueueFull`] when the bounded queue is saturated.
    pub fn submit(&self, req: SolveRequest) -> Result<RequestHandle, ServeError> {
        let cfg = &self.inner.cfg;
        let mut st = hold(&self.inner.state);
        let queue_position = st.outcomes.len() as u64;
        let cycle_budget = req.cycle_budget.unwrap_or(cfg.default_cycle_budget);
        if st.shutdown {
            let err = ServeError::Shutdown;
            let outcome = shed_outcome(&req, queue_position, cycle_budget, &err);
            st.outcomes.push(Some(outcome));
            return Err(err);
        }
        if st.queue.len() >= cfg.queue_capacity {
            let err = ServeError::QueueFull {
                capacity: cfg.queue_capacity,
            };
            let outcome = shed_outcome(&req, queue_position, cycle_budget, &err);
            st.outcomes.push(Some(outcome));
            return Err(err);
        }

        let mapping = cfg
            .policy
            .mappings
            .first()
            .map(|m| m.name())
            .unwrap_or("none");
        let preconditioner = cfg
            .policy
            .preconditioners
            .first()
            .map(|p| p.name())
            .unwrap_or("none");
        let key = operator_key(&req.matrix, &cfg.base.sim.grid, mapping, preconditioner);
        let (scrubs_before, evictions_before) =
            (st.cache.scrub_checks(), st.cache.scrub_evictions());
        let (flight, leader) = if cfg.scrub_cache {
            st.cache.admit_scrubbed(key)
        } else {
            st.cache.admit(key)
        };
        let scrub_checks = st.cache.scrub_checks() - scrubs_before;
        let scrub_evictions = st.cache.scrub_evictions() - evictions_before;
        let token = CancelToken::new();
        let deadline = req
            .wall_deadline
            .or(cfg.default_wall_deadline)
            .map(|d| Instant::now() + d);
        if let Some(dl) = deadline {
            st.deadlines.push((dl, token.clone()));
            self.inner.monitor_cv.notify_all();
        }
        let handle = RequestHandle {
            id: req.id.clone(),
            token: token.clone(),
        };
        st.outcomes.push(Option::None);
        st.queue.push_back(Job {
            req,
            token,
            queue_position,
            flight,
            leader,
            operator_key: key,
            cycle_budget,
            deadline,
            scrub_checks,
            scrub_evictions,
        });
        self.inner.work_cv.notify_one();
        Ok(handle)
    }

    /// Opens the gate: workers start popping queued jobs.
    pub fn open(&self) {
        let mut st = hold(&self.inner.state);
        st.gate_open = true;
        drop(st);
        self.inner.work_cv.notify_all();
    }

    /// Blocks until every admitted request has terminated. The gate
    /// must be open (or shutting down), or this waits forever.
    pub fn wait_all(&self) {
        let mut st = hold(&self.inner.state);
        while !(st.queue.is_empty() && st.running == 0) {
            st = match self.inner.done_cv.wait(st) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Prepare-cache admission statistics so far: `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        let st = hold(&self.inner.state);
        (st.cache.hits(), st.cache.misses())
    }

    /// Cache-scrub statistics so far: `(checks, evictions)`. Both zero
    /// unless [`ServeConfig::scrub_cache`] is on.
    pub fn scrub_stats(&self) -> (u64, u64) {
        let st = hold(&self.inner.state);
        (st.cache.scrub_checks(), st.cache.scrub_evictions())
    }

    /// Gracefully drains the service: refuses new admissions, lets the
    /// workers finish every queued request, and returns all outcomes in
    /// submission order.
    pub fn shutdown(mut self) -> Vec<RequestOutcome> {
        {
            let mut st = hold(&self.inner.state);
            st.shutdown = true;
            st.gate_open = true;
        }
        self.inner.work_cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        {
            let mut st = hold(&self.inner.state);
            st.monitor_stop = true;
        }
        self.inner.monitor_cv.notify_all();
        if let Some(monitor) = self.monitor.take() {
            let _ = monitor.join();
        }
        let mut st = hold(&self.inner.state);
        st.outcomes
            .drain(..)
            .enumerate()
            .map(|(i, slot)| match slot {
                Some(outcome) => outcome,
                // Unreachable after a full drain; synthesized rather
                // than unwrapped so a lost slot degrades into a typed
                // outcome instead of a panic.
                Option::None => RequestOutcome {
                    id: format!("lost-{i}"),
                    queue_position: i as u64,
                    prepare: "none".into(),
                    attempts: 0,
                    backoff_ticks: Vec::new(),
                    result: Err(ServeError::Shutdown),
                    journal: String::new(),
                },
            })
            .collect()
    }
}

/// Batch-mode result: every submission's outcome plus service-level
/// aggregates.
#[derive(Debug)]
pub struct BatchReport {
    /// One outcome per submission, in submission order (shed included).
    pub outcomes: Vec<RequestOutcome>,
    /// Prepare-cache hits (admissions that shared a flight).
    pub cache_hits: u64,
    /// Prepare-cache misses (admissions that led a flight).
    pub cache_misses: u64,
    /// Submissions shed at admission.
    pub shed: u64,
}

/// Runs a whole batch through a fresh service: submit everything while
/// the gate is closed (so the shed set depends only on submission
/// order), open, drain, shut down.
pub fn serve_batch(cfg: ServeConfig, requests: Vec<SolveRequest>) -> BatchReport {
    let service = ServeService::start(cfg);
    let mut shed = 0u64;
    for req in requests {
        if service.submit(req).is_err() {
            shed += 1;
        }
    }
    service.open();
    service.wait_all();
    let (cache_hits, cache_misses) = service.cache_stats();
    let outcomes = service.shutdown();
    BatchReport {
        outcomes,
        cache_hits,
        cache_misses,
        shed,
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut st = hold(&inner.state);
            loop {
                if st.gate_open {
                    if let Some(job) = st.queue.pop_front() {
                        st.running += 1;
                        break job;
                    }
                    if st.shutdown {
                        return;
                    }
                } else if st.shutdown {
                    return;
                }
                st = match inner.work_cv.wait(st) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        let slot = job.queue_position as usize;
        let outcome = run_request(inner, job);
        let mut st = hold(&inner.state);
        if let Some(entry) = st.outcomes.get_mut(slot) {
            *entry = Some(outcome);
        }
        st.running -= 1;
        drop(st);
        inner.done_cv.notify_all();
    }
}

/// Trips cancel tokens whose wall deadline passed. Deadlines are
/// enforced *here*, host-side, so the simulator itself never reads a
/// wall clock (the `wall-clock-in-sim` lint stays intact) and the
/// kernel observes only a cooperative flag.
fn monitor_loop(inner: &Inner) {
    let mut st = hold(&inner.state);
    loop {
        if st.monitor_stop {
            return;
        }
        let now = Instant::now();
        st.deadlines.retain(|(deadline, token)| {
            if *deadline <= now {
                token.cancel();
                false
            } else {
                true
            }
        });
        let next = st.deadlines.iter().map(|(d, _)| *d).min();
        st = match next {
            Some(deadline) => {
                let wait = deadline.saturating_duration_since(now);
                match inner.monitor_cv.wait_timeout(st, wait) {
                    Ok((guard, _)) => guard,
                    Err(poisoned) => poisoned.into_inner().0,
                }
            }
            Option::None => match inner.monitor_cv.wait(st) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            },
        };
    }
}

/// Publishes `Failed` on drop. Because [`Flight::publish`] is
/// first-write-wins, the leader publishes its real result and then
/// lets the guard's no-op drop fire; on a panic or early return the
/// guard is what unblocks the followers.
struct PublishGuard<'a> {
    flight: &'a Flight,
}

impl Drop for PublishGuard<'_> {
    fn drop(&mut self) {
        self.flight.publish(Option::None);
    }
}

/// Classifies a tripped cancel token: past the deadline it was the
/// monitor, otherwise the caller.
fn cancellation_reason(deadline: Option<Instant>) -> ServeError {
    match deadline {
        Some(d) if Instant::now() >= d => ServeError::DeadlineExceeded,
        _ => ServeError::Cancelled,
    }
}

/// A failure worth retrying at the service level: the simulated machine
/// misbehaved (deadlock, invariant trip), either directly or as the
/// final attempt of an exhausted degradation ladder. Input, capacity
/// and numeric failures are deterministic properties of the request and
/// never retried.
fn is_transient(err: &AzulError) -> bool {
    match err {
        AzulError::Sim(_) => true,
        AzulError::Exhausted { attempts } => {
            matches!(attempts.last().map(|a| &a.error), Some(AzulError::Sim(_)))
        }
        _ => false,
    }
}

/// Sleeps `ticks * tick`, in slices, bailing early when the token
/// trips so cancellation latency is bounded by one slice.
fn backoff_sleep(ticks: u64, tick: Duration, token: &CancelToken) {
    let total = tick.saturating_mul(u32::try_from(ticks).unwrap_or(u32::MAX));
    if total.is_zero() {
        return;
    }
    let slice = Duration::from_millis(5).min(total);
    let until = Instant::now() + total;
    while Instant::now() < until && !token.is_cancelled() {
        std::thread::sleep(slice.min(until.saturating_duration_since(Instant::now())));
    }
}

/// Builds the per-request supervisor: the shared base config plus this
/// request's cancel token, fault plan (solve attempts only) and cycle
/// budget.
fn supervisor_for(cfg: &ServeConfig, job: &Job, with_faults: bool) -> SolveSupervisor {
    let mut base = cfg.base.clone();
    base.sim.cancel = Some(job.token.clone());
    if with_faults {
        base.sim.faults = job.req.faults.clone();
    }
    let mut policy = cfg.policy.clone();
    policy.cycle_budget = policy.cycle_budget.min(job.cycle_budget);
    SolveSupervisor::with_policy(base, policy)
}

/// Executes one admitted request end to end: prepare (lead or follow),
/// the retry loop, and journal construction.
fn run_request(inner: &Inner, job: Job) -> RequestOutcome {
    let cfg = &inner.cfg;
    let prepare_role;
    let mut attempts: u64 = 0;
    let mut backoff: Vec<u64> = Vec::new();

    // A request that was cancelled (or timed out) while queued never
    // starts a solve. The deadline is consulted directly, not just via
    // the token: an already-expired deadline must classify identically
    // whether or not the monitor thread has tripped the token yet.
    let expired = job.deadline.is_some_and(|d| Instant::now() >= d);
    if expired || job.token.is_cancelled() {
        if job.leader {
            job.flight.publish(Option::None);
        }
        let err = cancellation_reason(job.deadline);
        return finish(&job, "none", attempts, backoff, Err(err), Option::None);
    }

    // Prepare stage: the leader computes the first rung and publishes;
    // followers block on the flight. A failed or cancelled prepare is
    // not terminal for followers — they fall back to an unseeded solve,
    // which walks the degradation ladders itself.
    let seed: Option<Arc<PreparedRung>> = if job.leader {
        prepare_role = "leader";
        let guard = PublishGuard {
            flight: &job.flight,
        };
        let sup = supervisor_for(cfg, &job, false);
        match sup.prepare_first_rung(&job.req.matrix) {
            Ok(rung) => {
                let rung = Arc::new(rung);
                job.flight.publish(Some(Arc::clone(&rung)));
                drop(guard);
                Some(rung)
            }
            Err(AzulError::Cancelled { .. }) => {
                drop(guard);
                let err = cancellation_reason(job.deadline);
                return finish(
                    &job,
                    prepare_role,
                    attempts,
                    backoff,
                    Err(err),
                    Option::None,
                );
            }
            Err(_) => {
                drop(guard);
                Option::None
            }
        }
    } else {
        match job.flight.wait(&job.token) {
            FlightWait::Ready(rung) => {
                prepare_role = "shared";
                Some(rung)
            }
            FlightWait::Failed => {
                prepare_role = "none";
                Option::None
            }
            FlightWait::Cancelled => {
                let err = cancellation_reason(job.deadline);
                return finish(&job, "none", attempts, backoff, Err(err), Option::None);
            }
        }
    };

    // Retry loop: each attempt is a full supervised solve; only
    // transient (machine-side) failures are retried, on the
    // deterministic capped-exponential tick schedule.
    loop {
        if job.token.is_cancelled() {
            let err = cancellation_reason(job.deadline);
            return finish(
                &job,
                prepare_role,
                attempts,
                backoff,
                Err(err),
                Option::None,
            );
        }
        attempts += 1;
        let sup = supervisor_for(cfg, &job, true);
        match sup.solve_prepared(&job.req.matrix, &job.req.rhs, seed.as_deref()) {
            Ok(report) => {
                return finish(&job, prepare_role, attempts, backoff, Ok(()), Some(report));
            }
            Err(AzulError::Cancelled { .. }) => {
                let err = cancellation_reason(job.deadline);
                return finish(
                    &job,
                    prepare_role,
                    attempts,
                    backoff,
                    Err(err),
                    Option::None,
                );
            }
            Err(err) => {
                let retries_done = attempts.saturating_sub(1);
                if is_transient(&err) && retries_done < u64::from(cfg.retry.max_retries) {
                    let ticks = cfg.retry.backoff_ticks(backoff.len() as u32);
                    backoff.push(ticks);
                    backoff_sleep(ticks, cfg.retry.tick, &job.token);
                    continue;
                }
                return finish(
                    &job,
                    prepare_role,
                    attempts,
                    backoff,
                    Err(ServeError::Solve(err)),
                    Option::None,
                );
            }
        }
    }
}

/// Assembles the outcome and its journal. `verdict` is `Ok(())` exactly
/// when `solved` carries the winning report.
fn finish(
    job: &Job,
    prepare_role: &str,
    attempts: u64,
    backoff_ticks: Vec<u64>,
    verdict: Result<(), ServeError>,
    solved: Option<SupervisedSolveReport>,
) -> RequestOutcome {
    let (outcome_label, error_text, result) = match (&verdict, &solved) {
        (Ok(()), Some(report)) => (
            "success",
            String::new(),
            Ok(ServedSolve {
                x: report.x.clone(),
                iterations: report.iterations,
                final_residual: report.final_residual,
                total_cycles: report.total_cycles,
                supervisor_attempts: report.attempts,
                escalations: report.escalations.len(),
            }),
        ),
        (Err(err), _) => (err.outcome_label(), err.to_string(), Err(err.clone())),
        // `verdict` and `solved` are produced together; a success
        // without a report is unrepresentable at the call sites.
        (Ok(()), Option::None) => (
            "failed",
            "internal: success verdict without a report".to_string(),
            Err(ServeError::Solve(AzulError::Input(
                "success verdict without a report".into(),
            ))),
        ),
    };

    let mut report = TelemetryReport::default();
    report.scenario_field("service", "azul-serve");
    report.scenario_field("request_id", job.req.id.as_str());
    report.scenario_field("matrix_rows", job.req.matrix.rows() as u64);
    report.scenario_field("matrix_nnz", job.req.matrix.nnz() as u64);
    report.scenario_field("operator_key", format!("{:016x}", job.operator_key));
    if let Some(sup) = &solved {
        fill_supervisor_report(&mut report, sup);
        report.counter("cycles", sup.total_cycles);
        report.counter("iterations", sup.iterations as u64);
        report.convergence = sup.convergence.clone();
        azul_sim::telemetry::fill_integrity_report(&mut report, &sup.integrity);
    }
    // The scrub verdict of this request's cache admission rides in the
    // same integrity section as the solve's own audit; a request that
    // neither scrubbed nor audited keeps the section absent, so
    // integrity-off journals are byte-identical to the pre-v7 shape
    // modulo the schema version.
    if job.scrub_checks > 0 {
        let section = report.integrity.get_or_insert_with(Default::default);
        section.scrub_checks += job.scrub_checks;
        section.scrub_evictions += job.scrub_evictions;
    }
    report.serve = Some(ServeSummary {
        request_id: job.req.id.clone(),
        queue_position: job.queue_position,
        prepare: prepare_role.to_string(),
        attempts,
        backoff_ticks: backoff_ticks.clone(),
        cycle_budget: job.cycle_budget,
        outcome: outcome_label.to_string(),
        error: error_text,
    });
    RequestOutcome {
        id: job.req.id.clone(),
        queue_position: job.queue_position,
        prepare: prepare_role.to_string(),
        attempts,
        backoff_ticks,
        result,
        journal: report.to_json().to_string_pretty(),
    }
}

/// Journal + outcome for a submission refused at admission.
fn shed_outcome(
    req: &SolveRequest,
    queue_position: u64,
    cycle_budget: u64,
    err: &ServeError,
) -> RequestOutcome {
    let mut report = TelemetryReport::default();
    report.scenario_field("service", "azul-serve");
    report.scenario_field("request_id", req.id.as_str());
    report.scenario_field("matrix_rows", req.matrix.rows() as u64);
    report.scenario_field("matrix_nnz", req.matrix.nnz() as u64);
    report.serve = Some(ServeSummary {
        request_id: req.id.clone(),
        queue_position,
        prepare: "none".to_string(),
        attempts: 0,
        backoff_ticks: Vec::new(),
        cycle_budget,
        outcome: err.outcome_label().to_string(),
        error: err.to_string(),
    });
    RequestOutcome {
        id: req.id.clone(),
        queue_position,
        prepare: "none".to_string(),
        attempts: 0,
        backoff_ticks: Vec::new(),
        result: Err(err.clone()),
        journal: report.to_json().to_string_pretty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use azul_sparse::generate;

    fn rhs(n: usize, salt: u64) -> Vec<f64> {
        (0..n)
            .map(|i| ((i as u64 * 13 + salt * 7) % 9) as f64 / 9.0 + 0.2)
            .collect()
    }

    fn quick_cfg() -> ServeConfig {
        ServeConfig::new(AzulConfig::small_test())
    }

    fn request(id: &str, salt: u64) -> SolveRequest {
        let a = generate::grid_laplacian_2d(8, 8);
        let b = rhs(a.rows(), salt);
        SolveRequest::new(id, a, b)
    }

    #[test]
    fn backoff_schedule_is_capped_exponential() {
        let retry = RetryPolicy {
            max_retries: 5,
            base_backoff_ticks: 1,
            max_backoff_ticks: 8,
            tick: Duration::ZERO,
        };
        let schedule: Vec<u64> = (0..5).map(|k| retry.backoff_ticks(k)).collect();
        assert_eq!(schedule, vec![1, 2, 4, 8, 8]);
        // Shift overflow saturates into the cap instead of wrapping.
        assert_eq!(retry.backoff_ticks(200), 8);
    }

    #[test]
    fn single_request_round_trips_with_a_journal() {
        let report = serve_batch(quick_cfg(), vec![request("r0", 0)]);
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(report.shed, 0);
        let out = &report.outcomes[0];
        assert_eq!(out.id, "r0");
        assert_eq!(out.queue_position, 0);
        assert_eq!(out.prepare, "leader");
        assert_eq!(out.attempts, 1);
        assert!(out.backoff_ticks.is_empty());
        let solve = out.result.as_ref().expect("healthy solve succeeds");
        assert!(solve.final_residual.is_finite());
        assert!(out.journal.contains("\"schema_version\": 7"));
        assert!(out.journal.contains("\"outcome\": \"success\""));
        assert!(out.journal.contains("\"prepare\": \"leader\""));
    }

    #[test]
    fn overload_sheds_exactly_the_oversubscription() {
        let mut cfg = quick_cfg();
        cfg.queue_capacity = 2;
        let reqs = (0..4).map(|i| request(&format!("r{i}"), i)).collect();
        let report = serve_batch(cfg, reqs);
        assert_eq!(report.shed, 2);
        assert_eq!(report.outcomes.len(), 4);
        for out in &report.outcomes[..2] {
            assert!(out.result.is_ok(), "admitted request solved: {out:?}");
        }
        for out in &report.outcomes[2..] {
            assert_eq!(
                out.result,
                Err(ServeError::QueueFull { capacity: 2 }),
                "oversubscribed request shed with a typed error"
            );
            assert_eq!(out.attempts, 0);
            assert!(out.journal.contains("\"outcome\": \"queue-full\""));
        }
    }

    #[test]
    fn repeated_operator_traffic_shares_the_prepare() {
        // Same operator AND same rhs: the shared prepare must not
        // change the answer, so the solves are directly comparable.
        let reqs = (0..3).map(|i| request(&format!("r{i}"), 0)).collect();
        let report = serve_batch(quick_cfg(), reqs);
        let roles: Vec<&str> = report.outcomes.iter().map(|o| o.prepare.as_str()).collect();
        assert_eq!(roles, vec!["leader", "shared", "shared"]);
        assert_eq!(report.cache_hits, 2);
        assert_eq!(report.cache_misses, 1);
        for out in &report.outcomes {
            assert!(out.result.is_ok(), "{out:?}");
        }
        // Shared prepares change provenance, never the answer.
        let lead = report.outcomes[0].result.as_ref().expect("lead ok");
        let shared = report.outcomes[1].result.as_ref().expect("shared ok");
        assert_eq!(lead.x, shared.x);
        assert_eq!(lead.iterations, shared.iterations);
    }

    #[test]
    fn scrubbed_healthy_traffic_verifies_without_evicting() {
        use azul_sim::IntegrityPolicy;

        let mut cfg = quick_cfg();
        cfg.scrub_cache = true;
        cfg.base.pcg.integrity = IntegrityPolicy::audit();
        let service = ServeService::start(cfg);
        for i in 0..3 {
            service
                .submit(request(&format!("r{i}"), 0))
                .expect("admitted");
        }
        service.open();
        service.wait_all();
        let (checks, evictions) = service.scrub_stats();
        let outcomes = service.shutdown();

        // Followers admitted against a Pending flight are not scrubbed
        // (nothing is published yet); with batch-closed-gate admission
        // all three land before the leader publishes, so the scrub
        // count stays at zero here — the coverage for a Ready-entry
        // scrub is the cache unit test. What must hold end to end:
        // healthy traffic never evicts, and every solve's own audit is
        // clean and journaled.
        assert_eq!(evictions, 0, "healthy artifacts are never evicted");
        assert!(checks <= 2);
        for out in &outcomes {
            let solve = out.result.as_ref().expect("healthy solve succeeds");
            assert!(solve.final_residual.is_finite());
            assert!(out.journal.contains("\"integrity\""), "{}", out.journal);
            assert!(out.journal.contains("\"escapes\": 0"));
            assert!(out.journal.contains("\"violations\": []"));
        }
    }

    #[test]
    fn scrubbed_cache_hit_verifies_a_published_rung() {
        use azul_sim::IntegrityPolicy;

        // Sequential submission with the gate open: the first request
        // publishes its rung before the second is admitted, so the
        // second admission scrubs a Ready entry.
        let mut cfg = quick_cfg();
        cfg.scrub_cache = true;
        cfg.base.pcg.integrity = IntegrityPolicy::audit();
        let service = ServeService::start(cfg);
        service.open();
        service.submit(request("first", 0)).expect("admitted");
        service.wait_all();
        service.submit(request("second", 1)).expect("admitted");
        service.wait_all();
        let (checks, evictions) = service.scrub_stats();
        let outcomes = service.shutdown();
        assert_eq!(checks, 1, "the cache hit re-verified the cached rung");
        assert_eq!(evictions, 0, "the healthy rung survived the scrub");
        assert_eq!(outcomes[1].prepare, "shared");
        assert!(outcomes[1].journal.contains("\"scrub_checks\": 1"));
        assert!(outcomes[1].journal.contains("\"scrub_evictions\": 0"));
        assert!(outcomes[0].journal.contains("\"scrub_checks\": 0"));
        for out in &outcomes {
            assert!(out.result.is_ok(), "{out:?}");
        }
    }

    #[test]
    fn cancellation_before_execution_is_typed_and_runs_nothing() {
        let service = ServeService::start(quick_cfg());
        let handle = service.submit(request("victim", 0)).expect("admitted");
        handle.cancel();
        service.open();
        service.wait_all();
        let outcomes = service.shutdown();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].result, Err(ServeError::Cancelled));
        assert_eq!(outcomes[0].attempts, 0, "no solve attempt started");
        assert!(outcomes[0].journal.contains("\"outcome\": \"cancelled\""));
    }

    #[test]
    fn expired_deadline_is_classified_deterministically() {
        let mut req = request("late", 0);
        req.wall_deadline = Some(Duration::ZERO);
        let report = serve_batch(quick_cfg(), vec![req]);
        assert_eq!(report.outcomes[0].result, Err(ServeError::DeadlineExceeded));
        assert!(report.outcomes[0]
            .journal
            .contains("\"outcome\": \"deadline\""));
    }

    #[test]
    fn transient_failures_walk_the_documented_backoff_schedule() {
        // A one-cycle kernel deadline makes every simulated attempt die
        // with SimError::Deadlock — a transient, machine-side failure —
        // while the host-side prepare still succeeds. The service must
        // retry on the capped-exponential schedule and then surface the
        // exhausted ladder as a typed Solve error.
        let mut cfg = quick_cfg();
        cfg.base.sim.max_kernel_cycles = 1;
        cfg.policy = EscalationPolicy {
            max_attempts: 1,
            mappings: cfg.policy.mappings[..1].to_vec(),
            preconditioners: cfg.policy.preconditioners[..1].to_vec(),
            solvers: cfg.policy.solvers[..1].to_vec(),
            ..cfg.policy
        };
        cfg.retry.max_retries = 2;
        let report = serve_batch(cfg, vec![request("doomed", 0)]);
        let out = &report.outcomes[0];
        assert_eq!(out.attempts, 3, "initial attempt plus two retries");
        assert_eq!(out.backoff_ticks, vec![1, 2]);
        match &out.result {
            Err(ServeError::Solve(e)) => assert!(is_transient(e), "{e}"),
            other => panic!("expected exhausted Solve error, got {other:?}"),
        }
        assert!(out.journal.contains("\"outcome\": \"failed\""));
        assert!(out.journal.contains("\"backoff_ticks\": ["));
    }

    #[test]
    fn journals_are_byte_identical_across_worker_pool_sizes() {
        let batch = || {
            let mut reqs: Vec<SolveRequest> =
                (0..5).map(|i| request(&format!("r{i}"), i)).collect();
            // A fresh operator in the middle exercises both cache roles.
            let odd = generate::grid_laplacian_2d(6, 6);
            reqs[3] = SolveRequest::new("r3", odd.clone(), rhs(odd.rows(), 3));
            reqs
        };
        let journals = |workers: usize| -> Vec<String> {
            let mut cfg = quick_cfg();
            cfg.workers = workers;
            cfg.queue_capacity = 4; // sheds the last submission
            serve_batch(cfg, batch())
                .outcomes
                .into_iter()
                .map(|o| o.journal)
                .collect()
        };
        assert_eq!(journals(1), journals(4));
    }
}
