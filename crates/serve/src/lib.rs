//! # azul-serve — solve-as-a-service for the Azul accelerator model
//!
//! A robust service front-end over the supervised solver
//! ([`azul_core::SolveSupervisor`]): many concurrent
//! [`SolveRequest`]s flow through bounded admission, a deterministic
//! scheduler and a worker pool, with per-request deadlines,
//! cooperative cancellation, deterministic retry/backoff for transient
//! simulator failures, typed load-shedding, a keyed single-flight
//! prepare cache, and graceful drain on shutdown.
//!
//! The module split mirrors the request path:
//!
//! * [`error`] — the typed rejection/failure vocabulary
//!   ([`ServeError`]), `source()`-chained down to the simulator's root
//!   cause.
//! * [`cache`] — operator keying ([`cache::operator_key`]) and the
//!   bounded single-flight prepare cache ([`cache::FlightCache`]).
//! * [`service`] — admission, scheduling, execution, telemetry
//!   ([`ServeService`], [`serve_batch`]).
//!
//! The headline property is journal determinism: every per-request
//! journal (telemetry schema v6, `serve` section) is byte-identical
//! across worker-pool sizes, because every journaled decision is made
//! serially at admission time. See the `service` module docs for the
//! contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod error;
pub mod service;

pub use cache::{operator_key, FlightCache};
pub use error::ServeError;
pub use service::{
    serve_batch, BatchReport, RequestHandle, RequestOutcome, RetryPolicy, ServeConfig,
    ServeService, ServedSolve, SolveRequest,
};
