//! Typed service-level errors.

use azul_core::AzulError;

/// How the service refused or failed a [`SolveRequest`](crate::SolveRequest).
///
/// The first four variants are *load-shedding and lifecycle* rejections —
/// the request never produced (or never finished) a solve, by the
/// service's own decision. [`ServeError::Solve`] wraps a terminal solve
/// failure after the retry policy was exhausted; its `source()` chain
/// reaches the underlying [`AzulError`] and, through
/// `AzulError::Exhausted`, the final supervised attempt's root cause, so
/// service logs show *why* a request failed without string matching.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission refused: the bounded queue was full. Typed so callers
    /// can back off instead of parsing a message.
    QueueFull {
        /// The queue capacity that was saturated.
        capacity: usize,
    },
    /// The request's wall deadline expired before a result was produced.
    /// The deadline monitor trips the request's cancel token; the sim
    /// observes it cooperatively at the next serial commit point.
    DeadlineExceeded,
    /// The caller cancelled the request via its
    /// [`RequestHandle`](crate::RequestHandle).
    Cancelled,
    /// The service is draining for shutdown and no longer admits work.
    Shutdown,
    /// The solve itself failed after every service-level retry: the
    /// wrapped error is the last attempt's.
    Solve(AzulError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "request shed: admission queue full ({capacity} pending)")
            }
            ServeError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            ServeError::Cancelled => write!(f, "request cancelled"),
            ServeError::Shutdown => write!(f, "service is shutting down"),
            ServeError::Solve(e) => write!(f, "solve failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    /// Chains to the wrapped [`AzulError`] for [`ServeError::Solve`];
    /// the shedding/lifecycle variants are leaves (the service itself
    /// is the cause).
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl ServeError {
    /// Stable outcome label used in the telemetry `serve` section.
    pub fn outcome_label(&self) -> &'static str {
        match self {
            ServeError::QueueFull { .. } => "queue-full",
            ServeError::DeadlineExceeded => "deadline",
            ServeError::Cancelled => "cancelled",
            ServeError::Shutdown => "shutdown",
            ServeError::Solve(_) => "failed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use azul_core::AttemptFailure;
    use azul_sim::SimError;

    #[test]
    fn display_names_the_shed_reason() {
        let e = ServeError::QueueFull { capacity: 4 };
        assert!(e.to_string().contains("queue full (4 pending)"));
        assert_eq!(e.outcome_label(), "queue-full");
    }

    #[test]
    fn source_chain_reaches_the_final_attempts_root_cause() {
        // Service log scenario: a request exhausted the supervisor's
        // ladders; walking source() from the ServeError must reach the
        // *final* attempt's machine error, not the first attempt's.
        let first = AzulError::Input("attempt one".into());
        let last_sim = SimError::Deadlock {
            cycle: 77,
            stalled_pes: vec![3],
            inflight_flits: 1,
        };
        let exhausted = AzulError::Exhausted {
            attempts: vec![
                AttemptFailure {
                    attempt: 1,
                    config: "azul@2x2 ic0 pcg".into(),
                    error: first,
                },
                AttemptFailure {
                    attempt: 2,
                    config: "azul@2x2 ic0 bicgstab".into(),
                    error: AzulError::Sim(last_sim.clone()),
                },
            ],
        };
        let e = ServeError::Solve(exhausted);

        use std::error::Error;
        let azul = e.source().expect("Solve chains to AzulError");
        let attempt = azul.source().expect("Exhausted chains to final attempt");
        let sim = attempt.source().expect("final attempt chains to SimError");
        assert_eq!(sim.to_string(), last_sim.to_string());
        assert!(sim.to_string().contains("cycle 77"));
    }

    #[test]
    fn shedding_variants_are_leaves() {
        use std::error::Error;
        assert!(ServeError::DeadlineExceeded.source().is_none());
        assert!(ServeError::Cancelled.source().is_none());
        assert!(ServeError::Shutdown.source().is_none());
    }
}
