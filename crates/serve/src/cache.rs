//! Keyed prepare cache with single-flight deduplication.
//!
//! Preparing the supervisor's first rung (preprocessing + preconditioner
//! factorization) is the expensive, operator-dependent part of a solve.
//! When several queued requests target the same operator under the same
//! base configuration, only one of them — the *leader* — should pay for
//! it; the others — *followers* — share the result.
//!
//! Determinism is the design constraint here: the per-request journal
//! records whether a request led or shared its prepare, and that record
//! must be byte-identical regardless of how many workers raced through
//! the queue. Roles are therefore decided at **admission time**, under
//! the service's state lock, by [`FlightCache::admit`] — never at
//! execution time. Each cache entry is a [`Flight`]: a publish-once cell
//! the leader fills and followers block on. A follower keeps its own
//! `Arc<Flight>` handle, so LRU eviction between admission and execution
//! can never strand it.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use azul_core::PreparedRung;
use azul_mapping::TileGrid;
use azul_sim::CancelToken;
use azul_sparse::Csr;

/// Cache key for a prepare: operator contents plus every knob that
/// changes the first rung's preprocessing or factorization.
///
/// FNV-1a over the CSR structure and values (bit patterns, so `-0.0`
/// and `0.0` key differently — exact-bytes identity, no tolerance),
/// the tile grid, and the first-rung mapping and preconditioner names.
pub fn operator_key(a: &Csr, grid: &TileGrid, mapping: &str, preconditioner: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    eat(&(a.rows() as u64).to_le_bytes());
    eat(&(a.cols() as u64).to_le_bytes());
    eat(&(a.nnz() as u64).to_le_bytes());
    for &p in a.row_ptr() {
        eat(&(p as u64).to_le_bytes());
    }
    for &c in a.col_idx() {
        eat(&(c as u64).to_le_bytes());
    }
    for &v in a.values() {
        eat(&v.to_bits().to_le_bytes());
    }
    eat(&(grid.width() as u64).to_le_bytes());
    eat(&(grid.height() as u64).to_le_bytes());
    eat(mapping.as_bytes());
    eat(&[0xff]); // separator: ("ab","c") must not collide with ("a","bc")
    eat(preconditioner.as_bytes());
    h
}

/// State of a single-flight prepare.
#[derive(Debug, Clone)]
enum FlightState {
    /// The leader has not published yet.
    Pending,
    /// The prepare succeeded; followers seed their solve with this rung.
    Ready(Arc<PreparedRung>),
    /// The prepare failed or its leader was cancelled; followers fall
    /// back to preparing inside their own solve (no shared result).
    Failed,
}

/// What a follower observed when waiting on a flight.
#[derive(Debug)]
pub enum FlightWait {
    /// The leader published a usable rung.
    Ready(Arc<PreparedRung>),
    /// The leader failed or was cancelled; prepare individually.
    Failed,
    /// The *waiter's own* token tripped while blocked.
    Cancelled,
}

/// A publish-once cell for one prepared rung.
#[derive(Debug)]
pub struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        }
    }

    /// Publishes the leader's result. Only the first publish takes
    /// effect; later calls are ignored, so a drop-guard can safely
    /// publish `Failed` on every exit path without clobbering a
    /// success.
    pub fn publish(&self, rung: Option<Arc<PreparedRung>>) {
        let mut st = match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if matches!(*st, FlightState::Pending) {
            *st = match rung {
                Some(r) => FlightState::Ready(r),
                None => FlightState::Failed,
            };
            self.cv.notify_all();
        }
    }

    /// Blocks until the leader publishes or `token` trips.
    ///
    /// The wait polls the token on a coarse timeout rather than
    /// registering a wakeup: cancellation is already cooperative (the
    /// sim samples it once per cycle), so tens of milliseconds of
    /// latency on this path is in-budget and keeps the token type a
    /// plain atomic flag.
    pub fn wait(&self, token: &CancelToken) -> FlightWait {
        let mut st = match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        loop {
            match &*st {
                FlightState::Ready(r) => return FlightWait::Ready(Arc::clone(r)),
                FlightState::Failed => return FlightWait::Failed,
                FlightState::Pending => {
                    if token.is_cancelled() {
                        return FlightWait::Cancelled;
                    }
                    let (guard, _timeout) =
                        match self.cv.wait_timeout(st, Duration::from_millis(25)) {
                            Ok(pair) => pair,
                            Err(poisoned) => {
                                let (guard, timeout) = poisoned.into_inner();
                                (guard, timeout)
                            }
                        };
                    st = guard;
                }
            }
        }
    }

    /// Non-blocking peek used by tests and the batch summary.
    pub fn is_ready(&self) -> bool {
        let st = match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        matches!(*st, FlightState::Ready(_))
    }

    /// Non-blocking peek at the published rung, if any. Used by the
    /// cache scrubber: only a `Ready` entry has an artifact to verify
    /// (a `Pending` leader is still computing, a `Failed` flight shares
    /// nothing).
    fn ready_rung(&self) -> Option<Arc<PreparedRung>> {
        let st = match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        match &*st {
            FlightState::Ready(r) => Some(Arc::clone(r)),
            _ => None,
        }
    }
}

/// Bounded LRU of in-flight and completed prepares, keyed by
/// [`operator_key`].
///
/// Touched **only at admission**, under the service state lock — the
/// recency order and every leader/follower decision are functions of
/// the submission sequence alone, which is what makes the journals
/// reproducible across worker-pool sizes.
#[derive(Debug)]
pub struct FlightCache {
    cap: usize,
    /// Front = least recently admitted-against; back = most recent.
    /// A `Vec` scan beats a map here: capacities are single-digit and
    /// the deterministic eviction order falls out of position.
    entries: Vec<(u64, Arc<Flight>)>,
    hits: u64,
    misses: u64,
    scrub_checks: u64,
    scrub_evictions: u64,
}

impl FlightCache {
    /// Creates a cache holding at most `cap` flights. `cap == 0`
    /// disables sharing: every admission becomes an unshared leader.
    pub fn new(cap: usize) -> Self {
        FlightCache {
            cap,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            scrub_checks: 0,
            scrub_evictions: 0,
        }
    }

    /// Admits a request against `key`, returning its flight handle and
    /// whether it leads (`true`) or follows (`false`).
    pub fn admit(&mut self, key: u64) -> (Arc<Flight>, bool) {
        if self.cap == 0 {
            self.misses += 1;
            return (Arc::new(Flight::new()), true);
        }
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            let entry = self.entries.remove(pos);
            let flight = Arc::clone(&entry.1);
            self.entries.push(entry);
            self.hits += 1;
            return (flight, false);
        }
        let flight = Arc::new(Flight::new());
        self.entries.push((key, Arc::clone(&flight)));
        if self.entries.len() > self.cap {
            // Followers hold their own Arc, so dropping the cache's
            // reference only stops *future* admissions from sharing it.
            self.entries.remove(0);
        }
        self.misses += 1;
        (flight, true)
    }

    /// Like [`FlightCache::admit`], but re-verifies a cached entry's
    /// ABFT checksums ([`PreparedRung::verify_integrity`]) before
    /// sharing it. A published rung that fails the scrub is evicted on
    /// the spot and this admission becomes the leader of a fresh
    /// flight — the poisoned artifact is re-prepared, never served.
    /// Entries still `Pending` (leader computing) or `Failed` carry no
    /// artifact and are admitted against unscrubbed.
    pub fn admit_scrubbed(&mut self, key: u64) -> (Arc<Flight>, bool) {
        if self.cap > 0 {
            if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
                if let Some(rung) = self.entries[pos].1.ready_rung() {
                    self.scrub_checks += 1;
                    if !rung.verify_integrity() {
                        self.scrub_evictions += 1;
                        self.entries.remove(pos);
                    }
                }
            }
        }
        self.admit(key)
    }

    /// Admissions that shared an existing flight.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Admissions that created a fresh flight (became leaders).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Cached rungs whose checksums were re-verified on a scrubbed hit.
    pub fn scrub_checks(&self) -> u64 {
        self.scrub_checks
    }

    /// Cached rungs evicted because the scrub found a mismatch.
    pub fn scrub_evictions(&self) -> u64 {
        self.scrub_evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use azul_sparse::Coo;

    fn laplacian_1d(n: usize) -> Csr {
        let mut triplets = Vec::new();
        for i in 0..n {
            triplets.push((i, i, 2.0));
            if i > 0 {
                triplets.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                triplets.push((i, i + 1, -1.0));
            }
        }
        Coo::from_triplets(n, n, triplets)
            .expect("valid laplacian")
            .to_csr()
    }

    #[test]
    fn key_separates_operators_and_knobs() {
        let a = laplacian_1d(8);
        let b = laplacian_1d(9);
        let g2 = TileGrid::new(2, 2);
        let g4 = TileGrid::new(4, 4);
        let base = operator_key(&a, &g2, "azul", "ic0");
        assert_eq!(base, operator_key(&a, &g2, "azul", "ic0"), "key is stable");
        assert_ne!(
            base,
            operator_key(&b, &g2, "azul", "ic0"),
            "operator matters"
        );
        assert_ne!(base, operator_key(&a, &g4, "azul", "ic0"), "grid matters");
        assert_ne!(
            base,
            operator_key(&a, &g2, "block", "ic0"),
            "mapping matters"
        );
        assert_ne!(
            base,
            operator_key(&a, &g2, "azul", "ssor"),
            "precond matters"
        );
        // Concatenation ambiguity across the two name fields.
        assert_ne!(
            operator_key(&a, &g2, "ab", "c"),
            operator_key(&a, &g2, "a", "bc")
        );
    }

    #[test]
    fn key_is_sensitive_to_value_bits() {
        let a = laplacian_1d(4);
        let mut vals: Vec<(usize, usize, f64)> = Vec::new();
        for i in 0..4usize {
            vals.push((i, i, 2.0 + if i == 2 { 1e-12 } else { 0.0 }));
            if i > 0 {
                vals.push((i, i - 1, -1.0));
            }
            if i + 1 < 4 {
                vals.push((i, i + 1, -1.0));
            }
        }
        let b = Coo::from_triplets(4, 4, vals)
            .expect("valid perturbed")
            .to_csr();
        let g = TileGrid::new(2, 2);
        assert_ne!(
            operator_key(&a, &g, "azul", "ic0"),
            operator_key(&b, &g, "azul", "ic0")
        );
    }

    #[test]
    fn first_admission_leads_and_repeats_follow() {
        let mut cache = FlightCache::new(2);
        let (f1, lead1) = cache.admit(42);
        let (f2, lead2) = cache.admit(42);
        assert!(lead1, "first admission for a key is the leader");
        assert!(!lead2, "second admission shares the flight");
        assert!(Arc::ptr_eq(&f1, &f2), "both hold the same flight");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn eviction_is_lru_and_does_not_strand_followers() {
        let mut cache = FlightCache::new(2);
        let (f_old, _) = cache.admit(1);
        cache.admit(2);
        cache.admit(1); // touch: 1 is now most recent, 2 is LRU
        cache.admit(3); // evicts 2
        let (_, lead_again_1) = cache.admit(1);
        assert!(!lead_again_1, "touched key survived the eviction");
        let (_, lead_again_2) = cache.admit(2);
        assert!(lead_again_2, "evicted key re-admits as a fresh leader");
        // The evicted flight handle still works for whoever held it.
        f_old.publish(None);
        assert!(!f_old.is_ready());
    }

    #[test]
    fn scrubbed_admission_evicts_poisoned_rungs() {
        use azul_core::{AzulConfig, SolveSupervisor};
        use azul_sparse::generate;

        let a = generate::grid_laplacian_2d(8, 8);
        let sup = SolveSupervisor::new(AzulConfig::small_test());
        let rung = sup.prepare_first_rung(&a).expect("prepare succeeds");

        // A healthy published rung survives the scrub and is shared.
        let mut cache = FlightCache::new(2);
        let (flight, lead) = cache.admit_scrubbed(42);
        assert!(lead);
        flight.publish(Some(Arc::new(rung.clone())));
        let (_, lead) = cache.admit_scrubbed(42);
        assert!(!lead, "clean cached rung is shared");
        assert_eq!(cache.scrub_checks(), 1);
        assert_eq!(cache.scrub_evictions(), 0);

        // A poisoned rung is evicted and the admission re-leads.
        let mut poisoned = rung;
        poisoned.flip_checksum_bit(0, 61);
        let mut cache = FlightCache::new(2);
        let (flight, _) = cache.admit_scrubbed(42);
        flight.publish(Some(Arc::new(poisoned)));
        let (refreshed, lead) = cache.admit_scrubbed(42);
        assert!(lead, "poisoned rung is evicted, not served");
        assert!(!Arc::ptr_eq(&flight, &refreshed), "fresh flight");
        assert_eq!(cache.scrub_checks(), 1);
        assert_eq!(cache.scrub_evictions(), 1);

        // Unscrubbed admission would have trusted the cache blindly;
        // the scrubbed path repaired it, so the next hit is clean.
        refreshed.publish(None);
        let (_, lead) = cache.admit_scrubbed(42);
        assert!(!lead, "failed flight still shares (no artifact to scrub)");
        assert_eq!(cache.scrub_checks(), 1, "failed flights are not scrubbed");
    }

    #[test]
    fn zero_capacity_disables_sharing() {
        let mut cache = FlightCache::new(0);
        let (_, lead_a) = cache.admit(7);
        let (_, lead_b) = cache.admit(7);
        assert!(lead_a && lead_b, "every admission leads when cap is 0");
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn publish_is_first_write_wins() {
        let flight = Flight::new();
        flight.publish(None); // leader failed
        flight.publish(None); // drop-guard fires again: no-op
        let token = CancelToken::new();
        match flight.wait(&token) {
            FlightWait::Failed => {}
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn wait_observes_waiter_cancellation() {
        let flight = Flight::new();
        let token = CancelToken::new();
        token.cancel();
        match flight.wait(&token) {
            FlightWait::Cancelled => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn wait_unblocks_on_publish_from_another_thread() {
        let flight = Arc::new(Flight::new());
        let publisher = {
            let flight = Arc::clone(&flight);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                flight.publish(None);
            })
        };
        let token = CancelToken::new();
        match flight.wait(&token) {
            FlightWait::Failed => {}
            other => panic!("expected Failed, got {other:?}"),
        }
        publisher.join().expect("publisher thread exits cleanly");
    }
}
