//! Offline drop-in subset of the `criterion 0.5` API.
//!
//! The build environment for this repository cannot reach crates.io, so
//! the workspace vendors the slice of criterion its one statistical
//! micro-benchmark target uses: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with `sample_size`),
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: a short calibration pass sizes
//! the batch so one sample takes roughly a millisecond, then `samples`
//! timed batches report min / median / mean ns-per-iteration to stdout.
//! No statistical outlier analysis, plots, or baselines — for those,
//! point the workspace `criterion` dependency back at the registry
//! version.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: usize,
    /// ns/iter of each timed sample.
    results: Vec<f64>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            results: Vec::new(),
        }
    }

    /// Times `f` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate the per-sample iteration count to ~1 ms.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;

        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            self.results
                .push(t.elapsed().as_nanos() as f64 / per_sample as f64);
        }
    }

    /// Times `routine` over fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.results.push(t.elapsed().as_nanos() as f64);
        }
    }
}

fn report(name: &str, mut results: Vec<f64>) {
    if results.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    results.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = results[0];
    let median = results[results.len() / 2];
    let mean = results.iter().sum::<f64>() / results.len() as f64;
    println!(
        "{name:<40} min {:>12} median {:>12} mean {:>12} ({} samples)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        results.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(name, b.results);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("--- group: {name} ---");
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        let mut b = Bencher::new(samples);
        f(&mut b);
        report(&format!("{}/{}", self.name, name), b.results);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from one or more [`criterion_group!`] bundles.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls = black_box(calls + 1)));
        assert!(calls > 0);
    }

    #[test]
    fn group_with_batched_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut total = 0usize;
        group.bench_function("sum", |b| {
            b.iter_batched(
                || vec![1usize; 100],
                |v| {
                    total += v.iter().sum::<usize>();
                    total
                },
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert!(total >= 300);
    }
}
